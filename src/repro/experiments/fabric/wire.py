"""The fabric's wire layer: envelopes, channels, framing, handshake.

Everything in this module is about moving one typed, versioned
:class:`Envelope` between a coordinator and a worker -- and about
surviving what a real link does to that ambition.  The split from
:mod:`repro.experiments.fabric.core` is a trust split as much as a code
split: the core schedules work among peers it has admitted; this module
decides what a byte stream is allowed to become *before* anything
trusts it.

Three hardening layers, in the order a frame meets them:

* **Framing limits.**  Frames are ``struct('>I')`` length + pickled
  payload.  A corrupt or hostile 4-byte header can announce a 4 GiB
  frame; :class:`_SocketChannel` rejects any announced length above
  :data:`MAX_FRAME_BYTES` (and refuses to *send* a frame that large,
  or one that overflows the 32-bit length field) with a typed
  :class:`ChannelClosed` instead of attempting the allocation.
* **Restricted unpickling.**  A wire frame is attacker-controlled
  bytes, and ``pickle.loads`` executes arbitrary constructors.  Every
  inbound frame is decoded by :func:`restricted_loads`, whose
  allow-list of importable globals is **empty**: envelope payloads are
  plain data (dicts, lists, strings, numbers -- exactly what
  ``Envelope.to_wire`` emits), so any ``GLOBAL``/``STACK_GLOBAL``
  opcode in a frame is an attack or a bug, and either way it dies as a
  :class:`ChannelClosed`, not a code execution.
* **The HELLO/WELCOME handshake.**  A TCP peer is anonymous until it
  proves three things: it speaks :data:`PROTOCOL_VERSION` (checked by
  ``Envelope.from_wire`` on its first frame), it knows the run's
  shared secret token, and -- when it already holds a spec -- its
  :meth:`~repro.experiments.scenarios.ExperimentSpec.fingerprint`
  matches the coordinator's, so two checkouts that would compute
  *different bytes for the same cell* refuse to cooperate instead of
  corrupting a sweep.  Mismatches are rejected with a reason the
  operator can read; garbage is closed without ceremony.
"""

from __future__ import annotations

import hmac
import io
import pickle
import queue
import select
import socket
import struct
import time
from dataclasses import dataclass, field

from repro.errors import FabricError

#: Version stamped into every envelope; receivers reject mismatches
#: instead of guessing, so mixed-version fleets fail loudly.
PROTOCOL_VERSION = 2

# -- message kinds ----------------------------------------------------------

REQUEST_WORK = "REQUEST_WORK"
ASSIGN_CELLS = "ASSIGN_CELLS"
CELL_RESULT = "CELL_RESULT"
HEARTBEAT = "HEARTBEAT"
DRAIN = "DRAIN"
SHUTDOWN = "SHUTDOWN"
#: First message of a connecting TCP peer: token + optional fingerprint.
HELLO = "HELLO"
#: Coordinator's handshake verdict: admission (with the worker's
#: assignment) or a refusal carrying the reason.
WELCOME = "WELCOME"

MESSAGE_KINDS = frozenset({REQUEST_WORK, ASSIGN_CELLS, CELL_RESULT,
                           HEARTBEAT, DRAIN, SHUTDOWN, HELLO, WELCOME})

#: Sender id of the coordinator end of every channel.
COORDINATOR = "coordinator"

#: Largest frame a channel will send or accept (64 MiB).  Instrumented
#: cells carry full trace payloads and stay far below this; a header
#: announcing more is treated as corruption or hostility, never as a
#: buffer to allocate.
MAX_FRAME_BYTES = 64 * 1024 * 1024

#: What a 4-byte big-endian length field can express at all.
_HEADER_RANGE = 0xFFFFFFFF


@dataclass(frozen=True)
class Envelope:
    """One typed, versioned fabric message."""

    kind: str
    sender: str
    payload: dict = field(default_factory=dict)
    version: int = PROTOCOL_VERSION

    def __post_init__(self) -> None:
        if self.kind not in MESSAGE_KINDS:
            raise FabricError(f"unknown message kind {self.kind!r}")

    def to_wire(self) -> dict:
        """Plain-dict spelling (what the socket transport pickles)."""
        return {"kind": self.kind, "sender": self.sender,
                "payload": self.payload, "version": self.version}

    @classmethod
    def from_wire(cls, data: dict) -> "Envelope":
        try:
            env = cls(kind=data["kind"], sender=data["sender"],
                      payload=dict(data["payload"]),
                      version=int(data["version"]))
        except FabricError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise FabricError(f"malformed envelope {data!r}: {exc}") from exc
        if env.version != PROTOCOL_VERSION:
            raise FabricError(
                f"protocol version mismatch: got {env.version}, "
                f"speak {PROTOCOL_VERSION}")
        return env


# -- restricted unpickling ---------------------------------------------------


class _RestrictedUnpickler(pickle.Unpickler):
    """Unpickler for wire frames: **no** importable globals, period.

    ``Envelope.to_wire`` emits only containers and scalars, which the
    pickle protocol encodes without a single ``GLOBAL`` opcode -- so the
    allow-list of payload types is the primitive set and nothing else.
    A frame that asks for any module attribute (the classic
    ``os.system`` / ``builtins.eval`` gadget, or even a benign
    dataclass) is rejected before its constructor can run.
    """

    def find_class(self, module: str, name: str):
        raise pickle.UnpicklingError(
            f"wire frame references global {module}.{name}; envelope "
            f"payloads are plain data only")

    def persistent_load(self, pid):
        raise pickle.UnpicklingError("wire frames cannot use persistent ids")


def restricted_loads(frame: bytes):
    """Decode one wire frame under the empty global allow-list."""
    return _RestrictedUnpickler(io.BytesIO(frame)).load()


# -- channels ---------------------------------------------------------------
#
# A channel is one duplex coordinator<->worker conversation.  The
# coordinator side needs non-blocking poll/recv (it multiplexes many
# workers); the worker side needs a blocking recv with timeout.


class ChannelClosed(FabricError):
    """The peer hung up (worker death, coordinator death) -- or sent
    something no healthy peer would (oversize frame, undecodable
    bytes), which the receiver treats exactly like a death."""


class _QueuePair:
    """Thread-transport channel half: two in-process queues."""

    def __init__(self, inbox: "queue.SimpleQueue", outbox: "queue.SimpleQueue",
                 ) -> None:
        self._inbox = inbox
        self._outbox = outbox

    def send(self, env: Envelope) -> None:
        self._outbox.put(env)

    def poll(self) -> bool:
        return not self._inbox.empty()

    def recv(self, timeout: "float | None" = None) -> "Envelope | None":
        try:
            return self._inbox.get(timeout=timeout)
        except queue.Empty:
            return None

    def close(self) -> None:  # queues are garbage-collected with the run
        pass


class _PipeChannel:
    """Process-transport channel half: one end of ``multiprocessing.Pipe``."""

    def __init__(self, conn) -> None:
        self._conn = conn

    def send(self, env: Envelope) -> None:
        try:
            self._conn.send(env)
        except (OSError, ValueError, BrokenPipeError) as exc:
            raise ChannelClosed(f"pipe send failed: {exc}") from exc

    def poll(self) -> bool:
        try:
            return self._conn.poll()
        except (OSError, ValueError):
            raise ChannelClosed("pipe poll failed")

    def recv(self, timeout: "float | None" = None) -> "Envelope | None":
        try:
            if not self._conn.poll(timeout):
                return None
            return self._conn.recv()
        except (EOFError, OSError, ValueError) as exc:
            raise ChannelClosed(f"pipe closed: {exc}") from exc

    def close(self) -> None:
        try:
            self._conn.close()
        except OSError:
            pass


class _SocketChannel:
    """Socket-transport channel half: length-prefixed pickled envelopes.

    Frames are ``struct('>I')`` length + ``pickle(envelope.to_wire())``.
    The class is transport-agnostic over the socket family -- the UNIX
    transport and the TCP transport wrap the same byte-stream framing.
    Inbound frames pass three gates before anything trusts them: the
    announced length must not exceed ``max_frame_bytes``, the body must
    decode under :func:`restricted_loads` (no importable globals), and
    the decoded dict must revalidate as a versioned envelope through
    :meth:`Envelope.from_wire`.  Every failure is a typed
    :class:`ChannelClosed`/:class:`FabricError`, never a raw pickle or
    struct surprise.
    """

    _HEADER = struct.Struct(">I")

    def __init__(self, sock: "socket.socket", *,
                 max_frame_bytes: int = MAX_FRAME_BYTES) -> None:
        self._sock = sock
        self._buffer = bytearray()
        self._pending: "Envelope | None" = None
        self.max_frame_bytes = int(max_frame_bytes)

    def send(self, env: Envelope) -> None:
        try:
            frame = pickle.dumps(env.to_wire(),
                                 protocol=pickle.HIGHEST_PROTOCOL)
        except Exception as exc:  # pickle raises a small zoo of types
            raise FabricError(
                f"unpicklable {env.kind} envelope: "
                f"{type(exc).__name__}: {exc}") from exc
        limit = min(self.max_frame_bytes, _HEADER_RANGE)
        if len(frame) > limit:
            raise ChannelClosed(
                f"refusing to send {len(frame)}-byte {env.kind} frame "
                f"(limit {limit}); the peer would reject it as hostile")
        try:
            self._sock.sendall(self._HEADER.pack(len(frame)) + frame)
        except struct.error as exc:  # unreachable after the limit check
            raise ChannelClosed(
                f"frame length {len(frame)} does not fit the wire "
                f"header: {exc}") from exc
        except OSError as exc:
            raise ChannelClosed(f"socket send failed: {exc}") from exc

    def _pump(self, timeout: float) -> None:
        """Pull whatever bytes are ready into the frame buffer."""
        try:
            ready, _, _ = select.select([self._sock], [], [], timeout)
            if not ready:
                return
            chunk = self._sock.recv(1 << 16)
        except OSError as exc:
            raise ChannelClosed(f"socket recv failed: {exc}") from exc
        if not chunk:
            if self._buffer:
                # Diagnosable truncation: say how far the frame got.
                detail = f" with {len(self._buffer)} buffered byte(s)"
                if len(self._buffer) >= self._HEADER.size:
                    (expected,) = self._HEADER.unpack(
                        bytes(self._buffer[:self._HEADER.size]))
                    detail += f" of an expected {expected}-byte frame"
                raise ChannelClosed(f"socket peer hung up mid-frame{detail}")
            raise ChannelClosed("socket peer hung up")
        self._buffer.extend(chunk)

    def _take_frame(self) -> "Envelope | None":
        header = self._HEADER.size
        if len(self._buffer) < header:
            return None
        (length,) = self._HEADER.unpack(bytes(self._buffer[:header]))
        if length > self.max_frame_bytes:
            raise ChannelClosed(
                f"oversize frame: peer announced {length} bytes "
                f"(limit {self.max_frame_bytes})")
        if len(self._buffer) < header + length:
            return None
        frame = bytes(self._buffer[header:header + length])
        del self._buffer[:header + length]
        try:
            data = restricted_loads(frame)
        except Exception as exc:
            raise ChannelClosed(
                f"undecodable {length}-byte frame: "
                f"{type(exc).__name__}: {exc}") from exc
        return Envelope.from_wire(data)

    def poll(self) -> bool:
        env = self._take_frame()
        if env is not None:
            self._pending = env
            return True
        self._pump(0.0)
        env = self._take_frame()
        if env is not None:
            self._pending = env
            return True
        return False

    def recv(self, timeout: "float | None" = None) -> "Envelope | None":
        pending = getattr(self, "_pending", None)
        if pending is not None:
            self._pending = None
            return pending
        env = self._take_frame()
        if env is not None:
            return env
        deadline = (None if timeout is None
                    else time.monotonic() + timeout)  # simlint: disable=SL001 (transport timeout, host time)
        while True:
            remaining = (0.05 if deadline is None
                         else deadline - time.monotonic())  # simlint: disable=SL001 (transport timeout, host time)
            if deadline is not None and remaining <= 0:
                return None
            self._pump(max(0.0, remaining))
            env = self._take_frame()
            if env is not None:
                return env

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass


# -- the HELLO/WELCOME handshake --------------------------------------------


@dataclass(frozen=True)
class HandshakeInfo:
    """Everything the coordinator's admission gate knows about the run.

    The token is the shared secret remote workers must present; the
    scenario/fingerprint pair lets both sides prove they would compute
    identical bytes for identical cells (the fingerprint covers the
    builder's source -- see ``ExperimentSpec.fingerprint``).  The
    remaining fields ride in the WELCOME so a bootstrapped remote
    worker can assemble its own ``WorkerConfig`` without a second
    round-trip.
    """

    token: str
    scenario: str
    fingerprint: str
    instrument: bool = False
    drain_pause: float = 0.02
    runtime_dir: "str | None" = None
    chaos: "dict | None" = None
    """The run's ``WorkerChaos`` spelled as plain data (wire-safe), or
    None."""


def check_hello(env: Envelope, info: HandshakeInfo) -> "str | None":
    """Validate a peer's first message; the rejection reason, or None.

    Protocol-version screening already happened -- ``from_wire`` refused
    to construct the envelope otherwise -- so this checks the two
    claims a versioned peer still has to make: the shared token
    (compared in constant time) and, when the peer already holds a
    spec, the spec fingerprint.
    """
    if env.kind != HELLO:
        return f"expected HELLO, got {env.kind}"
    token = env.payload.get("token")
    # Compare as bytes: compare_digest raises TypeError on non-ASCII
    # str input, and the token here is attacker-supplied.
    if not isinstance(token, str) or not hmac.compare_digest(
            token.encode("utf-8"), info.token.encode("utf-8")):
        return "bad token"
    fingerprint = env.payload.get("fingerprint")
    if fingerprint is not None and fingerprint != info.fingerprint:
        return (f"spec fingerprint mismatch: worker computed "
                f"{str(fingerprint)[:12]}, coordinator sweeps "
                f"{info.fingerprint[:12]} -- the checkouts differ")
    return None


def welcome_payload(info: HandshakeInfo, worker_id: str) -> dict:
    """The admission WELCOME: identity plus worker-side run config."""
    return {"ok": True, "worker_id": worker_id, "scenario": info.scenario,
            "fingerprint": info.fingerprint, "instrument": info.instrument,
            "drain_pause": info.drain_pause,
            "runtime_dir": info.runtime_dir, "chaos": info.chaos}


def client_handshake(channel, token: str, *,
                     fingerprint: "str | None" = None,
                     worker_id: "str | None" = None,
                     nonce: "str | None" = None,
                     timeout: float = 10.0) -> dict:
    """Run the worker side of the handshake; the WELCOME payload.

    Sends HELLO, waits for the coordinator's verdict, and raises a
    clean :class:`FabricError` -- carrying the coordinator's stated
    reason -- on refusal, timeout, or a non-WELCOME reply.  ``nonce``
    is the launch-proof echoed by locally-spawned TCP workers; remote
    bootstraps leave it None.
    """
    channel.send(Envelope(kind=HELLO, sender=worker_id or "?",
                          payload={"token": token,
                                   "fingerprint": fingerprint,
                                   "worker_id": worker_id,
                                   "nonce": nonce}))
    env = channel.recv(timeout=timeout)
    if env is None:
        raise FabricError(
            f"handshake timed out after {timeout:g}s waiting for WELCOME")
    if env.kind != WELCOME:
        raise FabricError(f"expected WELCOME, got {env.kind}")
    if not env.payload.get("ok", False):
        raise FabricError("coordinator rejected the handshake: "
                          f"{env.payload.get('error', 'no reason given')}")
    return dict(env.payload)
