"""The coordinator/worker sweep fabric, as a package.

Grew out of a single ``fabric.py`` when the TCP transport arrived and
the wire layer became a trust boundary worth its own module:

* :mod:`repro.experiments.fabric.wire` -- envelopes, framing, the
  restricted unpickler, and the HELLO/WELCOME handshake.  Everything
  that decides what a byte stream may become.
* :mod:`repro.experiments.fabric.core` -- workers, transports, the
  coordinator, and :func:`execute_sweep_fabric`.  Everything that
  schedules work among admitted peers.
* ``python -m repro.experiments.fabric`` -- the remote-worker
  bootstrap CLI (see :mod:`repro.experiments.fabric.__main__`).

This ``__init__`` re-exports the whole public surface, so existing
``from repro.experiments.fabric import X`` call sites are unaffected
by the split.
"""

from repro.experiments.fabric.core import (  # noqa: F401
    Coordinator,
    FabricConfig,
    FabricStats,
    ProcessTransport,
    SocketTransport,
    TcpTransport,
    ThreadTransport,
    WorkerChaos,
    WorkerConfig,
    WorkerHandle,
    _Lease,
    _Worker,
    execute_sweep_fabric,
    make_transport,
    run_remote_worker,
    worker_main,
)
from repro.experiments.fabric.wire import (  # noqa: F401
    ASSIGN_CELLS,
    CELL_RESULT,
    COORDINATOR,
    DRAIN,
    HEARTBEAT,
    HELLO,
    MAX_FRAME_BYTES,
    MESSAGE_KINDS,
    PROTOCOL_VERSION,
    REQUEST_WORK,
    SHUTDOWN,
    WELCOME,
    ChannelClosed,
    Envelope,
    HandshakeInfo,
    check_hello,
    client_handshake,
    restricted_loads,
    welcome_payload,
)

__all__ = [
    "ASSIGN_CELLS",
    "CELL_RESULT",
    "COORDINATOR",
    "ChannelClosed",
    "Coordinator",
    "DRAIN",
    "Envelope",
    "FabricConfig",
    "FabricStats",
    "HEARTBEAT",
    "HELLO",
    "HandshakeInfo",
    "MAX_FRAME_BYTES",
    "MESSAGE_KINDS",
    "PROTOCOL_VERSION",
    "ProcessTransport",
    "REQUEST_WORK",
    "SHUTDOWN",
    "SocketTransport",
    "TcpTransport",
    "ThreadTransport",
    "WELCOME",
    "WorkerChaos",
    "WorkerConfig",
    "WorkerHandle",
    "check_hello",
    "client_handshake",
    "execute_sweep_fabric",
    "make_transport",
    "restricted_loads",
    "run_remote_worker",
    "welcome_payload",
    "worker_main",
]
