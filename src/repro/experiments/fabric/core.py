"""Distributed sweep fabric: one coordinator, N workers, typed messages.

The :mod:`~repro.experiments.executor` fans cells over a single
machine's ``ProcessPoolExecutor``; this module is the scale-out story
(ROADMAP item 1, in the style of panda-yoda's Yoda/Droid split): a
**coordinator** streams ``(x, seed)`` cells through a work queue with
batched *leases*, **workers** pull cells and push results, and every
conversation is a typed, versioned :class:`Envelope` carried by a
pluggable transport:

* ``thread``   -- in-process queues; workers are daemon threads.  Cell
  computation is serialized by a lock (the simulation uses per-process
  ambient state -- the obs session, the kernel event tally -- that
  threads would trample), so this transport exists to exercise the full
  message protocol deterministically in tests, not for speedup.
* ``process``  -- one ``multiprocessing.Process`` per worker over a
  duplex ``Pipe``.  The real same-machine backend.
* ``socket``   -- workers connect to the coordinator over a Unix-domain
  socket carrying length-prefixed pickled envelopes.  The worker side
  only needs the address, so the same protocol extends to remote
  launchers.
* ``tcp``      -- the cross-host story: the coordinator binds a TCP
  listener (``FabricConfig.listen``), launches its local fleet over
  loopback, and *additionally* accepts remote workers bootstrapped with
  ``python -m repro.experiments.fabric worker HOST:PORT --token T`` at
  any point of the run -- late joiners pass the HELLO/WELCOME handshake
  (token, protocol version, spec fingerprint; see
  :mod:`repro.experiments.fabric.wire`) and are leased work mid-run.

Protocol (see docs/FABRIC.md for the full schema):

* worker -> coordinator: ``REQUEST_WORK``, ``CELL_RESULT``, ``HEARTBEAT``
  (and, for TCP peers, the ``HELLO`` that opens the handshake)
* coordinator -> worker: ``ASSIGN_CELLS`` (a lease), ``DRAIN`` (idle,
  ask again), ``SHUTDOWN`` (exit now), ``WELCOME`` (handshake verdict)

Every message from a worker refreshes its liveness; a worker whose
process died, or that has been silent longer than
:attr:`FabricConfig.lease_timeout`, has its leased cells *requeued* and
(budget permitting) a replacement worker launched.  Results are keyed by
grid coordinates and merged by the executor's
:func:`~repro.experiments.executor.merge_cells`, so a fabric run is
**byte-identical** to the ``jobs=1`` serial reference no matter how
cells were distributed, re-leased, or recomputed (duplicate results of a
deterministic cell are equal; the first one wins).  Computed cells are
written to the content-addressed cell cache *as they arrive*, so a run
that loses its coordinator resumes from the cache.

Worker-loss testing reuses the :mod:`repro.faults` vocabulary at the
fabric layer: a :class:`WorkerChaos` revokes one worker after it has
computed a configured number of cells -- by crashing it, hard-killing
the process (``SIGKILL``), or hanging it (alive but silent, the
heartbeat-expiry path).
"""

from __future__ import annotations

import os
import queue
import secrets
import signal
import socket
import sys
import tempfile
import threading
import time
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Callable, Sequence

from repro import obs
from repro.errors import ExperimentError, FabricError
from repro.experiments.executor import (CellCache, CellResult, SweepTiming,
                                        cell_failure, compute_cell, fold_obs,
                                        merge_cells, plan_cells)
from repro.experiments.fabric.wire import (COORDINATOR, WELCOME,
                                           ChannelClosed, Envelope,
                                           HandshakeInfo, _PipeChannel,
                                           _QueuePair, _SocketChannel,
                                           check_hello, client_handshake,
                                           welcome_payload)
from repro.experiments.fabric.wire import (ASSIGN_CELLS, CELL_RESULT, DRAIN,  # noqa: F401  (re-exported protocol surface)
                                           HEARTBEAT, HELLO, MAX_FRAME_BYTES,
                                           MESSAGE_KINDS, PROTOCOL_VERSION,
                                           REQUEST_WORK, SHUTDOWN)
from repro.experiments.runner import SweepResult
from repro.experiments.scenarios import ExperimentSpec
from repro.obs.runtime import (HEARTBEAT_BUCKETS, RunTelemetry,
                               RuntimeRecorder, wall_stats)

# -- fault injection --------------------------------------------------------

#: Chaos modes: how the targeted worker is lost.
CHAOS_MODES = ("crash", "kill", "hang")


@dataclass(frozen=True)
class WorkerChaos:
    """Deterministically revoke one worker after ``after_cells`` cells.

    The fabric-layer analogue of a :mod:`repro.faults` host revocation:
    ``crash`` exits the worker loop abruptly (no message, channel
    closed), ``kill`` delivers ``SIGKILL`` to the worker process (process
    transports only -- a genuinely hard death), and ``hang`` leaves the
    worker alive but silent, which only the coordinator's lease-expiry
    clock can detect.
    """

    mode: str
    worker: str
    """Worker id, e.g. ``"w0"`` (replacements get fresh ids, so an
    injected fault fires at most once)."""
    after_cells: int

    def __post_init__(self) -> None:
        if self.mode not in CHAOS_MODES:
            raise FabricError(
                f"unknown chaos mode {self.mode!r}; pick from {CHAOS_MODES}")
        if self.after_cells < 0:
            raise FabricError("after_cells must be >= 0")

    @classmethod
    def parse(cls, text: str) -> "WorkerChaos":
        """Parse the CLI spelling ``mode:worker_index:after_cells``."""
        parts = text.split(":")
        if len(parts) != 3:
            raise FabricError(
                f"chaos spec {text!r} is not mode:worker:after_cells")
        mode, worker, after = parts
        try:
            return cls(mode=mode, worker=f"w{int(worker)}",
                       after_cells=int(after))
        except ValueError as exc:
            raise FabricError(f"bad chaos spec {text!r}: {exc}") from exc

    def to_wire(self) -> dict:
        """Plain-data spelling (rides in the TCP WELCOME payload)."""
        return {"mode": self.mode, "worker": self.worker,
                "after_cells": self.after_cells}

    @classmethod
    def from_wire(cls, data: dict) -> "WorkerChaos":
        try:
            return cls(mode=str(data["mode"]), worker=str(data["worker"]),
                       after_cells=int(data["after_cells"]))
        except (KeyError, TypeError, ValueError) as exc:
            raise FabricError(f"malformed chaos spec {data!r}: {exc}") from exc


@dataclass(frozen=True)
class FabricConfig:
    """Everything that shapes one fabric run (but never its result)."""

    workers: int = 2
    transport: str = "process"
    lease_size: int = 4
    """Cells per ``ASSIGN_CELLS`` batch."""
    lease_timeout: float = 30.0
    """Seconds of worker silence before its lease is revoked.  Must
    exceed the worst single-cell compute time (workers heartbeat between
    cells, not during one)."""
    poll_interval: float = 0.005
    """Coordinator sleep when no messages are waiting (seconds)."""
    drain_pause: float = 0.02
    """Worker pause after a ``DRAIN`` before re-requesting work."""
    max_worker_restarts: int = 4
    """Replacement workers the coordinator may launch before it starts
    shrinking the fleet instead."""
    chaos: "WorkerChaos | None" = None
    listen: str = "127.0.0.1:0"
    """TCP transport only: ``HOST:PORT`` the coordinator binds (port 0
    picks an ephemeral port; the bound address is announced on stderr
    and in the ``run.listen`` telemetry event)."""
    token: "str | None" = None
    """TCP transport only: the shared secret remote workers must present
    in their HELLO.  None (the default) generates a fresh random token
    per run -- fine for loopback fleets launched by the coordinator,
    useless for remote workers, which need the operator to pass an
    explicit ``--fabric-token``."""
    handshake_timeout: float = 5.0
    """Seconds a connected-but-silent TCP peer may take to produce its
    HELLO before the coordinator drops the connection."""

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise FabricError(f"workers must be >= 1, got {self.workers}")
        if self.lease_size < 1:
            raise FabricError(f"lease_size must be >= 1, got {self.lease_size}")
        if self.transport not in ("thread", "process", "socket", "tcp"):
            raise FabricError(
                f"unknown transport {self.transport!r}; pick from "
                f"('thread', 'process', 'socket', 'tcp')")
        if self.handshake_timeout <= 0:
            raise FabricError(
                f"handshake_timeout must be > 0, got {self.handshake_timeout}")
        if (self.chaos is not None and self.chaos.mode == "kill"
                and self.transport == "thread"):
            raise FabricError(
                "chaos mode 'kill' needs a process transport (SIGKILL "
                "from a thread worker would take down the coordinator)")


@dataclass
class FabricStats:
    """Operational counters of one fabric run (wall-clock flavored --
    *not* part of the deterministic result)."""

    transport: str = ""
    workers: int = 0
    leases: int = 0
    requeued_cells: int = 0
    revoked_leases: int = 0
    heartbeats: int = 0
    work_requests: int = 0
    workers_started: int = 0
    workers_lost: int = 0
    duplicate_results: int = 0
    remote_workers_joined: int = 0
    """TCP peers admitted through the accept loop mid-run (a subset of
    ``workers_started``)."""
    handshakes_rejected: int = 0
    """TCP connections dropped at the gate: bad token, fingerprint or
    version mismatch, undecodable bytes, or HELLO never arriving."""
    worker_lifetimes: "dict[str, float]" = field(default_factory=dict)
    """Seconds between launch and loss/shutdown, per worker id."""

    def to_dict(self) -> dict:
        return {
            "transport": self.transport,
            "workers": self.workers,
            "leases": self.leases,
            "requeued_cells": self.requeued_cells,
            "revoked_leases": self.revoked_leases,
            "heartbeats": self.heartbeats,
            "work_requests": self.work_requests,
            "workers_started": self.workers_started,
            "workers_lost": self.workers_lost,
            "duplicate_results": self.duplicate_results,
            "remote_workers_joined": self.remote_workers_joined,
            "handshakes_rejected": self.handshakes_rejected,
            "worker_lifetimes": {wid: self.worker_lifetimes[wid]
                                 for wid in sorted(self.worker_lifetimes)},
        }


# -- the worker -------------------------------------------------------------


@dataclass(frozen=True)
class WorkerConfig:
    """Per-worker knobs shipped to the worker side of the channel."""

    worker_id: str
    drain_pause: float = 0.02
    serialize_compute: bool = False
    """Thread transport only: hold the module compute lock around
    :func:`compute_cell` (ambient obs/session state is per-process)."""
    chaos: "WorkerChaos | None" = None
    runtime_dir: "str | None" = None
    """Run directory of the runtime telemetry plane
    (:mod:`repro.obs.runtime`), or None for no telemetry.  The worker
    appends wall-clock spans to its own ``spans-worker-<id>.jsonl``."""


#: Guards compute_cell for thread-transport workers (see module doc).
_COMPUTE_LOCK = threading.Lock()


class _ChaosTriggered(Exception):
    """Internal: the injected fault fired; unwind the worker loop."""


def _apply_chaos(config: WorkerConfig, cells_done: int,
                 recorder: "RuntimeRecorder | None" = None) -> None:
    chaos = config.chaos
    if chaos is None or chaos.worker != config.worker_id:
        return
    if cells_done < chaos.after_cells:
        return
    if recorder is not None:
        # The last thing a chaos-stricken worker says -- to the telemetry
        # plane, never to the coordinator (that's the point of chaos).
        recorder.event("chaos.injected", mode=chaos.mode,
                       after_cells=chaos.after_cells)
        recorder.close()
    if chaos.mode == "kill":
        os.kill(os.getpid(), signal.SIGKILL)  # never returns
    if chaos.mode == "hang":
        while True:  # alive but silent: only lease expiry catches this
            time.sleep(0.2)  # pragma: no cover - killed by coordinator
    raise _ChaosTriggered  # "crash": vanish without a goodbye message


def worker_main(channel, spec: ExperimentSpec, instrument: bool,
                config: WorkerConfig) -> None:
    """The worker loop every transport runs (thread, process, or remote).

    Pull-based: request work, compute each leased cell, push a
    ``CELL_RESULT`` per cell (success or failure -- a failing cell is
    reported with its coordinates, not swallowed), heartbeat between
    cells, and repeat until ``SHUTDOWN``.

    Every result carries ``wall_s`` -- the wall-clock seconds the cell
    took *in this worker* -- feeding the coordinator's per-cell wall
    percentiles.  With :attr:`WorkerConfig.runtime_dir` set the worker
    additionally appends ``cell.compute`` / ``cell.serialize`` spans and
    lifecycle events to its own runtime span file; none of this is ever
    visible to the deterministic sim-time plane.
    """
    me = config.worker_id
    recorder: "RuntimeRecorder | None" = None
    if config.runtime_dir is not None:
        try:
            recorder = RuntimeRecorder.for_worker(config.runtime_dir, me)
        except OSError:  # telemetry must never take a worker down
            recorder = None

    def send(kind: str, **payload) -> None:
        channel.send(Envelope(kind=kind, sender=me, payload=payload))

    def log(kind: str, **fields) -> None:
        if recorder is not None:
            recorder.event(kind, **fields)

    cells_done = 0
    try:
        log("worker.start")
        send(REQUEST_WORK)
        while True:
            env = channel.recv(timeout=1.0)
            if env is None:
                send(HEARTBEAT, cells_done=cells_done)
                continue
            if env.kind == SHUTDOWN:
                log("worker.shutdown", cells_done=cells_done)
                return
            if env.kind == DRAIN:
                time.sleep(config.drain_pause)
                send(REQUEST_WORK)
                continue
            if env.kind != ASSIGN_CELLS:
                raise FabricError(
                    f"worker {me} got unexpected {env.kind}")
            lease_id = env.payload["lease"]
            log("lease.recv", lease=lease_id,
                cells=len(env.payload["cells"]))
            for cell in env.payload["cells"]:
                _apply_chaos(config, cells_done, recorder)
                x, seed = cell["x"], cell["seed"]
                compute_started = time.monotonic()  # simlint: disable=SL001 (runtime-plane wall time, never simulated)
                try:
                    if config.serialize_compute:
                        with _COMPUTE_LOCK:
                            result = compute_cell(spec, x, seed,
                                                  instrument=instrument)
                    else:
                        result = compute_cell(spec, x, seed,
                                              instrument=instrument)
                except Exception as exc:
                    send(CELL_RESULT, lease=lease_id, xi=cell["xi"],
                         si=cell["si"], x=x, seed=seed, ok=False,
                         error=f"{type(exc).__name__}: {exc}")
                    log("cell.failed", lease=lease_id, xi=cell["xi"],
                        si=cell["si"], error=type(exc).__name__)
                    continue
                wall = time.monotonic() - compute_started  # simlint: disable=SL001 (runtime-plane wall time, never simulated)
                cells_done += 1
                log("cell.compute", t=compute_started, dur=wall,
                    xi=cell["xi"], si=cell["si"], x=x, seed=seed)
                serialize_started = time.monotonic()  # simlint: disable=SL001 (runtime-plane wall time, never simulated)
                send(CELL_RESULT, lease=lease_id, xi=cell["xi"],
                     si=cell["si"], x=x, seed=seed, ok=True,
                     cell=result.to_payload(), wall_s=wall)
                log("cell.serialize", t=serialize_started,
                    dur=time.monotonic() - serialize_started,  # simlint: disable=SL001 (runtime-plane wall time, never simulated)
                    xi=cell["xi"], si=cell["si"])
                send(HEARTBEAT, cells_done=cells_done)
            send(REQUEST_WORK)
    except (ChannelClosed, _ChaosTriggered):
        log("worker.channel_closed", cells_done=cells_done)
        return  # coordinator died or chaos fired: just vanish
    finally:
        if recorder is not None:
            recorder.close()
        channel.close()


def _process_worker_entry(conn, spec, instrument, config):  # pragma: no cover - child process
    worker_main(_PipeChannel(conn), spec, instrument, config)


def _socket_worker_entry(address, spec, instrument, config):  # pragma: no cover - child process
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    sock.connect(address)
    worker_main(_SocketChannel(sock), spec, instrument, config)


def _tcp_worker_entry(address, token, spec, instrument, config,
                      nonce=None):  # pragma: no cover - child process
    """Locally-launched TCP worker: same host, same checkout, so the
    spec travels by fork/spawn and only the handshake crosses the
    wire.  The nonce -- minted by ``launch()``, never on the wire
    before this HELLO -- proves this peer is the spawned child."""
    host, port = _parse_listen(address)
    sock = socket.create_connection((host, port))
    channel = _SocketChannel(sock)
    client_handshake(channel, token, fingerprint=spec.fingerprint(),
                     worker_id=config.worker_id, nonce=nonce)
    worker_main(channel, spec, instrument, config)


def run_remote_worker(address: str, token: str, *,
                      spec: "ExperimentSpec | None" = None,
                      worker_id: "str | None" = None,
                      handshake_timeout: float = 10.0) -> str:
    """Bootstrap one worker against a (possibly remote) coordinator.

    The cross-host entry point behind ``python -m
    repro.experiments.fabric worker HOST:PORT --token T``.  Connects,
    runs the HELLO/WELCOME handshake, and -- once admitted -- serves
    cells with the ordinary :func:`worker_main` loop until the
    coordinator says ``SHUTDOWN`` or hangs up.  Returns the worker id
    the coordinator assigned.

    When ``spec`` is None (the CLI path) the scenario named in the
    WELCOME is resolved from this checkout's registry and its
    fingerprint is verified against the coordinator's, so two diverged
    checkouts refuse to mix cells instead of silently breaking
    byte-identical determinism.  Tests pass an unregistered ``spec``
    directly; its fingerprint then rides in the HELLO and the
    *coordinator* performs the same refusal.
    """
    host, port = _parse_listen(address)
    try:
        sock = socket.create_connection((host, port),
                                        timeout=handshake_timeout)
    except OSError as exc:
        raise FabricError(
            f"cannot reach coordinator at {address}: {exc}") from exc
    sock.settimeout(None)
    channel = _SocketChannel(sock)
    fingerprint = spec.fingerprint() if spec is not None else None
    try:
        welcome = client_handshake(channel, token, fingerprint=fingerprint,
                                   worker_id=worker_id,
                                   timeout=handshake_timeout)
    except FabricError:
        channel.close()
        raise
    assigned = str(welcome.get("worker_id") or worker_id or "?")
    if spec is None:
        from repro.experiments.scenarios import get_scenario

        scenario = str(welcome.get("scenario", ""))
        try:
            spec = get_scenario(scenario)
        except ExperimentError as exc:
            channel.close()
            raise FabricError(
                f"coordinator sweeps scenario {scenario!r}, which this "
                f"checkout does not know: {exc}") from exc
        local = spec.fingerprint()
        if local != welcome.get("fingerprint"):
            channel.close()
            raise FabricError(
                f"spec fingerprint mismatch for scenario {scenario!r}: "
                f"this checkout computes {local[:12]}, the coordinator "
                f"sweeps {str(welcome.get('fingerprint'))[:12]} -- "
                f"refusing to contribute cells")
    chaos = welcome.get("chaos")
    config = WorkerConfig(
        worker_id=assigned,
        drain_pause=float(welcome.get("drain_pause", 0.02)),
        chaos=WorkerChaos.from_wire(chaos) if chaos else None,
        runtime_dir=welcome.get("runtime_dir"))
    worker_main(channel, spec, bool(welcome.get("instrument", False)),
                config)
    return assigned


# -- transports -------------------------------------------------------------


@dataclass
class WorkerHandle:
    """Coordinator-side view of one launched worker."""

    worker_id: str
    channel: object
    is_alive: "Callable[[], bool]"
    kill: "Callable[[], None]"
    join: "Callable[[float], None]"
    started: float = 0.0
    """``time.monotonic()`` at launch (worker-lifetime accounting)."""
    remote: bool = False
    """True for TCP peers that joined through the accept loop.  The
    coordinator never spawned their process, so ``is_alive`` cannot
    consult it -- a remote worker's death is observed through its
    channel (:class:`ChannelClosed`) or its lease expiring, never
    through process state."""


class ThreadTransport:
    """Daemon threads + in-process queues (protocol tests)."""

    name = "thread"

    def launch(self, spec, instrument, config: WorkerConfig) -> WorkerHandle:
        to_worker: "queue.SimpleQueue" = queue.SimpleQueue()
        to_coord: "queue.SimpleQueue" = queue.SimpleQueue()
        worker_channel = _QueuePair(inbox=to_worker, outbox=to_coord)
        coord_channel = _QueuePair(inbox=to_coord, outbox=to_worker)
        config = replace(config, serialize_compute=True)
        thread = threading.Thread(
            target=worker_main, args=(worker_channel, spec, instrument, config),
            name=f"fabric-{config.worker_id}", daemon=True)
        thread.start()
        return WorkerHandle(
            worker_id=config.worker_id, channel=coord_channel,
            is_alive=thread.is_alive, kill=lambda: None,
            join=lambda timeout: thread.join(timeout),
            started=time.monotonic())  # simlint: disable=SL001 (worker-lifetime accounting, host time)

    def poll_peers(self) -> "list[tuple[object, Envelope]]":
        return []  # in-process transport: nobody can walk up and join

    def close(self) -> None:
        pass


class ProcessTransport:
    """One ``multiprocessing.Process`` per worker over a duplex pipe."""

    name = "process"

    def launch(self, spec, instrument, config: WorkerConfig) -> WorkerHandle:
        import multiprocessing

        parent_conn, child_conn = multiprocessing.Pipe(duplex=True)
        process = multiprocessing.Process(
            target=_process_worker_entry,
            args=(child_conn, spec, instrument, config),
            name=f"fabric-{config.worker_id}", daemon=True)
        process.start()
        child_conn.close()  # the parent keeps only its own end

        def kill() -> None:
            if process.is_alive():
                process.kill()

        return WorkerHandle(
            worker_id=config.worker_id, channel=_PipeChannel(parent_conn),
            is_alive=process.is_alive, kill=kill,
            join=lambda timeout: process.join(timeout),
            started=time.monotonic())  # simlint: disable=SL001 (worker-lifetime accounting, host time)

    def poll_peers(self) -> "list[tuple[object, Envelope]]":
        return []  # pipes are created pairwise at launch; no listener

    def close(self) -> None:
        pass


class SocketTransport:
    """Workers connect back over a Unix-domain socket.

    The launcher here spawns local processes for the test/benchmark
    story, but the worker side (:func:`_socket_worker_entry`) needs only
    the address -- the same protocol serves remote launchers.
    """

    name = "socket"

    def __init__(self) -> None:
        self._dir = tempfile.mkdtemp(prefix="repro-fabric-")
        self.address = os.path.join(self._dir, "fabric.sock")
        self._listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._listener.bind(self.address)
        self._listener.listen()

    def launch(self, spec, instrument, config: WorkerConfig) -> WorkerHandle:
        import multiprocessing

        process = multiprocessing.Process(
            target=_socket_worker_entry,
            args=(self.address, spec, instrument, config),
            name=f"fabric-{config.worker_id}", daemon=True)
        process.start()
        self._listener.settimeout(10.0)
        try:
            conn, _ = self._listener.accept()
        except TimeoutError as exc:
            process.kill()
            raise FabricError(
                f"worker {config.worker_id} never connected") from exc

        def kill() -> None:
            if process.is_alive():
                process.kill()

        return WorkerHandle(
            worker_id=config.worker_id, channel=_SocketChannel(conn),
            is_alive=process.is_alive, kill=kill,
            join=lambda timeout: process.join(timeout),
            started=time.monotonic())  # simlint: disable=SL001 (worker-lifetime accounting, host time)

    def poll_peers(self) -> "list[tuple[object, Envelope]]":
        return []  # the UNIX listener accepts only workers it launched

    def close(self) -> None:
        try:
            self._listener.close()
            os.unlink(self.address)
            os.rmdir(self._dir)
        except OSError:
            pass


def _parse_listen(text: str) -> "tuple[str, int]":
    """Split ``HOST:PORT`` (IPv6 hosts may be bracketed or bare)."""
    host, sep, port = text.rpartition(":")
    if not sep or not host:
        raise FabricError(
            f"listen address {text!r} is not of the form HOST:PORT")
    host = host.strip("[]")
    try:
        return host, int(port)
    except ValueError:
        raise FabricError(
            f"listen address {text!r} has a non-numeric port") from None


class TcpTransport:
    """The cross-host transport: a TCP listener plus the admission gate.

    Two populations share the listener.  ``launch()`` spawns *local*
    loopback workers -- the coordinator's own fleet, the same
    process-per-worker story as :class:`SocketTransport` -- and
    :meth:`poll_peers` admits *remote* workers bootstrapped out-of-band
    with ``python -m repro.experiments.fabric worker HOST:PORT --token
    T``.  Both arrive as anonymous TCP connections and both pass the
    same HELLO gate (token, protocol version, spec fingerprint -- see
    :func:`~repro.experiments.fabric.wire.check_hello`); the only
    difference is who picked the worker id.

    The gate is fail-closed and non-blocking: a connection that has not
    produced a valid HELLO within ``handshake_timeout`` seconds -- or
    that produces garbage, an oversize frame, a forbidden pickle, a bad
    token, or a foreign fingerprint -- is counted in :attr:`rejected`
    and dropped (with a WELCOME refusal when the channel still works)
    without ever touching coordinator state.
    """

    name = "tcp"

    def __init__(self, handshake: HandshakeInfo, *,
                 listen: str = "127.0.0.1:0",
                 handshake_timeout: float = 5.0,
                 max_frame_bytes: int = MAX_FRAME_BYTES) -> None:
        self.handshake = handshake
        self.handshake_timeout = handshake_timeout
        self.max_frame_bytes = max_frame_bytes
        host, port = _parse_listen(listen)
        try:
            self._listener = socket.create_server((host, port))
        except OSError as exc:
            raise FabricError(
                f"cannot bind fabric listener on {listen!r}: {exc}") from exc
        self._listener.setblocking(False)
        bound = self._listener.getsockname()
        self.address = f"{bound[0]}:{bound[1]}"
        #: Accepted-but-unproven connections, with their gate deadline.
        self._pending: "list[tuple[_SocketChannel, float]]" = []
        #: Peers that passed the gate while ``launch()`` was waiting for
        #: a *different* worker id; the next ``poll_peers`` returns them.
        self._backlog: "list[tuple[_SocketChannel, Envelope]]" = []
        #: Connections dropped at the gate (any reason).
        self.rejected = 0

    def launch(self, spec, instrument, config: WorkerConfig) -> WorkerHandle:
        import multiprocessing

        # The child proves it is *this* launch by echoing a per-launch
        # nonce that travels only through the process args -- a remote
        # token-holder claiming the same worker id cannot steal the
        # slot (and with it the process handle) during the wait below.
        nonce = secrets.token_hex(16)  # simlint: disable=SL001,SF002 (launch-proof secret, not a simulation draw)
        process = multiprocessing.Process(
            target=_tcp_worker_entry,
            args=(self.address, self.handshake.token, spec, instrument,
                  config, nonce),
            name=f"fabric-{config.worker_id}", daemon=True)
        process.start()
        deadline = time.monotonic() + 10.0  # simlint: disable=SL001 (transport timeout, host time)
        channel: "_SocketChannel | None" = None
        while channel is None and time.monotonic() < deadline:  # simlint: disable=SL001 (transport timeout, host time)
            for peer, hello in self.poll_peers():
                if (channel is None
                        and hello.payload.get("nonce") == nonce):
                    channel = peer
                else:  # a stranger mid-launch: keep it for the poll cycle
                    self._backlog.append((peer, hello))
            if channel is None:
                time.sleep(0.01)
        if channel is None:
            process.kill()
            raise FabricError(
                f"worker {config.worker_id} never completed the handshake")
        channel.send(Envelope(
            kind=WELCOME, sender=COORDINATOR,
            payload=welcome_payload(self.handshake, config.worker_id)))

        def kill() -> None:
            if process.is_alive():
                process.kill()

        return WorkerHandle(
            worker_id=config.worker_id, channel=channel,
            is_alive=process.is_alive, kill=kill,
            join=lambda timeout: process.join(timeout),
            started=time.monotonic())  # simlint: disable=SL001 (worker-lifetime accounting, host time)

    def poll_peers(self) -> "list[tuple[_SocketChannel, Envelope]]":
        """Non-blocking admission pump: accept, gate, return the worthy.

        Returns ``(channel, hello)`` pairs that presented a valid,
        token-bearing, fingerprint-compatible HELLO.  The WELCOME is
        *not* sent here -- the caller owns worker-id assignment
        (``launch`` for its own spawn, the coordinator's
        ``_adopt_remote`` for late joiners).
        """
        now = time.monotonic()  # simlint: disable=SL001 (handshake deadline, host time)
        while True:
            try:
                conn, _ = self._listener.accept()
            except (BlockingIOError, InterruptedError):
                break
            except OSError:
                break  # listener closed under us: nothing to accept
            conn.setblocking(True)
            self._pending.append((
                _SocketChannel(conn, max_frame_bytes=self.max_frame_bytes),
                now + self.handshake_timeout))
        admitted = list(self._backlog)
        self._backlog.clear()
        still_pending: "list[tuple[_SocketChannel, float]]" = []
        for channel, gate_deadline in self._pending:
            try:
                if not channel.poll():
                    if now > gate_deadline:
                        self._reject(channel, "handshake timed out")
                    else:
                        still_pending.append((channel, gate_deadline))
                    continue
                hello = channel.recv(timeout=0.0)
            except ChannelClosed as exc:
                # Hung up, oversize frame, forbidden pickle: the channel
                # is already poisoned, don't try to answer on it.
                self._reject(channel, str(exc), respond=False)
                continue
            except FabricError as exc:  # decoded but unspeakable (version)
                self._reject(channel, str(exc))
                continue
            if hello is None:
                still_pending.append((channel, gate_deadline))
                continue
            try:
                reason = check_hello(hello, self.handshake)
            except Exception as exc:
                # Fail closed: whatever a hostile HELLO manages to
                # trip, it costs the peer its connection, not the
                # coordinator its sweep.
                reason = f"malformed HELLO: {exc}"
            if reason is not None:
                self._reject(channel, reason)
                continue
            admitted.append((channel, hello))
        self._pending = still_pending
        return admitted

    def _reject(self, channel: "_SocketChannel", reason: str, *,
                respond: bool = True) -> None:
        self.rejected += 1
        if respond:
            try:
                channel.send(Envelope(kind=WELCOME, sender=COORDINATOR,
                                      payload={"ok": False,
                                               "error": reason}))
            except FabricError:
                pass
        channel.close()

    def close(self) -> None:
        for channel, _ in self._pending:
            channel.close()
        for channel, _ in self._backlog:
            channel.close()
        self._pending = []
        self._backlog = []
        try:
            self._listener.close()
        except OSError:
            pass


def make_transport(name: str, *,
                   handshake: "HandshakeInfo | None" = None,
                   listen: str = "127.0.0.1:0",
                   handshake_timeout: float = 5.0):
    if name == "thread":
        return ThreadTransport()
    if name == "process":
        return ProcessTransport()
    if name == "socket":
        return SocketTransport()
    if name == "tcp":
        if handshake is None:
            raise FabricError(
                "tcp transport needs a HandshakeInfo (token + fingerprint)")
        return TcpTransport(handshake, listen=listen,
                            handshake_timeout=handshake_timeout)
    raise FabricError(f"unknown transport {name!r}")


# -- the coordinator --------------------------------------------------------


@dataclass
class _Lease:
    lease_id: int
    worker_id: str
    outstanding: "set[tuple[int, int]]"


@dataclass
class _Worker:
    handle: WorkerHandle
    last_seen: float
    lease: "_Lease | None" = None


class Coordinator:
    """Owns the work queue, the leases, and the liveness clock."""

    def __init__(self, spec: ExperimentSpec, seed_list: "list[int]", *,
                 config: FabricConfig, cache: "CellCache | None",
                 instrument: bool,
                 on_cell: "Callable[[int, int], None] | None" = None,
                 telemetry: "RunTelemetry | None" = None,
                 clock: "Callable[[], float]" = time.monotonic) -> None:
        self.spec = spec
        self.seed_list = seed_list
        self.config = config
        self.cache = cache
        self.instrument = instrument
        self.on_cell = on_cell
        self.telemetry = telemetry
        #: The liveness/lease clock.  ``time.monotonic`` in production;
        #: boundary-timing tests inject a fake monotonic clock here.
        self._clock = clock
        self.stats = FabricStats(transport=config.transport,
                                 workers=config.workers)
        self.cells: "dict[tuple[int, int], CellResult]" = {}
        #: Wall seconds per computed cell, as reported by the worker
        #: that computed it (first result wins, like the cell itself).
        self.cell_walls: "list[float]" = []
        #: Grid-order queue of cells still to assign.
        self.queue: "deque[dict]" = deque()
        #: Cell coordinates -> full cell record (for requeuing).
        self._cell_specs: "dict[tuple[int, int], dict]" = {}
        self._workers: "dict[str, _Worker]" = {}
        self._next_lease = 0
        self._next_worker = 0
        self._restarts = 0
        self._transport = None
        self._failure: "ExperimentError | None" = None

    # -- worker lifecycle ---------------------------------------------------

    def _make_transport(self):
        if self.config.transport != "tcp":
            return make_transport(self.config.transport)
        runtime_dir = None
        if self.telemetry is not None and self.telemetry.run_dir is not None:
            runtime_dir = str(self.telemetry.run_dir)
        handshake = HandshakeInfo(
            token=self.config.token
            or secrets.token_hex(16),  # simlint: disable=SL001,SF002 (handshake shared secret, not a simulation draw)
            scenario=self.spec.name,
            fingerprint=self.spec.fingerprint(),
            instrument=self.instrument,
            drain_pause=self.config.drain_pause,
            runtime_dir=runtime_dir,
            chaos=(self.config.chaos.to_wire()
                   if self.config.chaos is not None else None))
        transport = make_transport(
            "tcp", handshake=handshake, listen=self.config.listen,
            handshake_timeout=self.config.handshake_timeout)
        # stderr, deliberately: stdout carries the CLI's deterministic
        # sweep summary, which CI byte-compares across transports.
        print(f"[fabric] coordinator listening on {transport.address}",
              file=sys.stderr, flush=True)
        if self.config.token is None:
            # Auto-generated: the operator has no other way to learn it.
            print(f"[fabric] run token: {handshake.token}",
                  file=sys.stderr, flush=True)
        return transport

    def _adopt_remote(self, channel, hello: Envelope, now: float) -> None:
        """Admit one handshake-validated TCP peer as a fleet member.

        The peer may request an id (``--worker-id``); a collision with
        a live worker mints a fresh one instead.  Determinism does not
        care either way -- results are keyed by cell coordinates, and
        the chaos matcher targets whichever worker ends up owning the
        configured id.
        """
        requested = hello.payload.get("worker_id")
        if not isinstance(requested, str) or not requested \
                or requested in self._workers:
            requested = None
        worker_id = requested if requested is not None \
            else self._mint_worker_id()
        try:
            channel.send(Envelope(
                kind=WELCOME, sender=COORDINATOR,
                payload=welcome_payload(self._transport.handshake,
                                        worker_id)))
        except FabricError:
            # Vanished between HELLO and WELCOME: never joined.
            channel.close()
            self._transport.rejected += 1
            return
        handle = WorkerHandle(
            worker_id=worker_id, channel=channel,
            is_alive=lambda: True,  # only the channel/lease can tell
            kill=lambda: None, join=lambda timeout: None,
            started=now, remote=True)
        self._workers[worker_id] = _Worker(handle=handle, last_seen=now)
        self.stats.workers_started += 1
        self.stats.remote_workers_joined += 1
        self._tel_event("worker.joined", worker_id=worker_id, remote=True)
        self._tel_count("runtime.workers_started_total")

    def _mint_worker_id(self) -> str:
        """A counter id no *live* worker holds.

        Remote peers may claim arbitrary ids (``--worker-id w5``), so
        the counter skips over taken ids rather than silently
        overwriting the registry entry -- an overwrite would orphan the
        incumbent's lease and hang the sweep.
        """
        while f"w{self._next_worker}" in self._workers:
            self._next_worker += 1
        worker_id = f"w{self._next_worker}"
        self._next_worker += 1
        return worker_id

    def _launch_worker(self) -> None:
        worker_id = self._mint_worker_id()
        runtime_dir = None
        if self.telemetry is not None and self.telemetry.run_dir is not None:
            runtime_dir = str(self.telemetry.run_dir)
        config = WorkerConfig(worker_id=worker_id,
                              drain_pause=self.config.drain_pause,
                              chaos=self.config.chaos,
                              runtime_dir=runtime_dir)
        with self._tel_span("worker.launch", worker_id=worker_id):
            handle = self._transport.launch(self.spec, self.instrument,
                                            config)
        self._workers[worker_id] = _Worker(handle=handle,
                                           last_seen=handle.started)
        self.stats.workers_started += 1
        self._tel_count("runtime.workers_started_total")

    def _record_lifetime(self, worker_id: str, handle: WorkerHandle,
                         now: float) -> None:
        """Record the worker's *final* lifetime, exactly once.

        A plain assignment, deliberately: the old ``setdefault`` on the
        shutdown path could freeze a stale lifetime recorded when the
        same worker id was revoked earlier, so whichever of loss or
        shutdown happens last for an id is the one that counts.  Loss
        pops the worker from the registry, so each path runs at most
        once per id and the recorded value is always the final one.
        """
        self.stats.worker_lifetimes[worker_id] = now - handle.started

    def _lose_worker(self, worker_id: str, now: float,
                     reason: str = "lost") -> None:
        """Revoke the worker's lease, requeue its cells, drop the worker."""
        worker = self._workers.pop(worker_id)
        self.stats.workers_lost += 1
        self._record_lifetime(worker_id, worker.handle, now)
        self._tel_event("worker.exit", worker_id=worker_id, reason=reason,
                        lifetime_s=now - worker.handle.started)
        self._tel_count("runtime.workers_lost_total")
        if worker.lease is not None:
            self.stats.revoked_leases += 1
            requeued = 0
            for key in sorted(worker.lease.outstanding):
                if key not in self.cells:
                    self.queue.append(self._cell_specs[key])
                    self.stats.requeued_cells += 1
                    requeued += 1
            self._tel_event("lease.revoked", worker_id=worker_id,
                            lease=worker.lease.lease_id, requeued=requeued)
        worker.handle.kill()
        worker.handle.channel.close()
        incomplete = len(self.cells) < len(self._cell_specs)
        if incomplete and self._failure is None:
            if self._restarts < self.config.max_worker_restarts:
                self._restarts += 1
                self._launch_worker()
            elif not self._workers:
                raise FabricError(
                    f"{self.spec.name}: every fabric worker died and the "
                    f"restart budget ({self.config.max_worker_restarts}) "
                    f"is spent with "
                    f"{len(self._cell_specs) - len(self.cells)} cells "
                    f"incomplete")

    # -- runtime telemetry (no-ops when the plane is off) -------------------

    def _tel_event(self, kind: str, **fields) -> None:
        if self.telemetry is not None:
            self.telemetry.event(kind, **fields)

    def _tel_span(self, kind: str, **fields):
        if self.telemetry is not None:
            return self.telemetry.span(kind, **fields)
        from repro.obs.runtime import _NullSpan
        return _NullSpan()

    def _tel_count(self, name: str, amount: float = 1.0) -> None:
        if self.telemetry is not None:
            self.telemetry.metrics.counter(name).inc(amount)

    # -- message handling ---------------------------------------------------

    def _assign(self, worker: _Worker) -> None:
        batch = []
        while self.queue and len(batch) < self.config.lease_size:
            cell = self.queue.popleft()
            if (cell["xi"], cell["si"]) in self.cells:
                continue  # completed by a revoked-but-live worker meanwhile
            batch.append(cell)
        if not batch:
            worker.handle.channel.send(
                Envelope(kind=DRAIN, sender=COORDINATOR))
            return
        lease = _Lease(lease_id=self._next_lease,
                       worker_id=worker.handle.worker_id,
                       outstanding={(c["xi"], c["si"]) for c in batch})
        self._next_lease += 1
        worker.lease = lease
        self.stats.leases += 1
        self._tel_event("lease.assign", lease=lease.lease_id,
                        worker_id=worker.handle.worker_id,
                        cells=len(batch))
        self._tel_count("runtime.leases_total")
        worker.handle.channel.send(Envelope(
            kind=ASSIGN_CELLS, sender=COORDINATOR,
            payload={"lease": lease.lease_id, "cells": batch}))

    def _on_result(self, worker: _Worker, env: Envelope) -> None:
        payload = env.payload
        key = (int(payload["xi"]), int(payload["si"]))
        if not payload.get("ok", False):
            # A failing cell is a sweep failure, with full coordinates --
            # record it, then drain the fleet before raising.
            exc = FabricError(str(payload.get("error", "unknown error")))
            self._failure = cell_failure(self.spec, payload["x"],
                                         payload["seed"], exc)
            return
        if worker.lease is not None:
            worker.lease.outstanding.discard(key)
            if not worker.lease.outstanding:
                worker.lease = None
        if key in self.cells:
            self.stats.duplicate_results += 1
            self._tel_event("cell.duplicate", xi=key[0], si=key[1],
                            worker_id=env.sender)
            return  # deterministic recompute of a re-leased cell
        cell = CellResult.from_payload(payload["cell"])
        self.cells[key] = cell
        wall = payload.get("wall_s")
        if isinstance(wall, (int, float)):
            self.cell_walls.append(float(wall))
        self._tel_event("cell.result", xi=key[0], si=key[1],
                        worker_id=env.sender, wall_s=wall)
        if self.cache is not None:
            digest = self._cell_specs[key]["digest"]
            self.cache.store(digest, cell, scenario=self.spec.name,
                             x=payload["x"], seed=payload["seed"])
        if self.on_cell is not None:
            self.on_cell(*key)

    def _handle(self, worker: _Worker, env: Envelope, now: float) -> None:
        silent_for = now - worker.last_seen
        worker.last_seen = now
        if env.kind == REQUEST_WORK:
            self.stats.work_requests += 1
            if self._failure is None:
                self._assign(worker)
            else:
                worker.handle.channel.send(
                    Envelope(kind=DRAIN, sender=COORDINATOR))
        elif env.kind == HEARTBEAT:
            self.stats.heartbeats += 1
            # Heartbeat latency: how long this worker had been silent
            # when the beat landed -- the lease-expiry clock's margin.
            self._tel_event("heartbeat", worker_id=env.sender,
                            latency_s=silent_for,
                            cells_done=env.payload.get("cells_done"))
            if self.telemetry is not None:
                self.telemetry.metrics.histogram(
                    "runtime.heartbeat_latency_seconds",
                    HEARTBEAT_BUCKETS).observe(silent_for)
        elif env.kind == CELL_RESULT:
            self._on_result(worker, env)
        else:
            raise FabricError(
                f"coordinator got unexpected {env.kind} from "
                f"{env.sender}")

    # -- main loop ----------------------------------------------------------

    def run(self) -> "dict[tuple[int, int], CellResult]":
        cells, pending = plan_cells(self.spec, self.seed_list, self.cache,
                                    instrument=self.instrument)
        self.cells.update(cells)
        for xi, si, x, seed, digest in pending:
            record = {"xi": xi, "si": si, "x": x, "seed": seed,
                      "digest": digest}
            self.queue.append(record)
            self._cell_specs[(xi, si)] = record
        total = len(self.spec.x_values) * len(self.seed_list)
        if self.telemetry is not None:
            self.telemetry.progress.cache_hits = len(self.cells)
            self._tel_event("run.start", total=total,
                            pending=len(pending), cache_hits=len(self.cells))
            self.telemetry.tick(len(self.cells), active_workers=0,
                                stragglers=0, force=True)
        if len(self.cells) >= total:
            return self.cells  # fully warm cache: no fleet needed

        self._transport = self._make_transport()
        try:
            for _ in range(self.config.workers):
                self._launch_worker()
            while len(self.cells) < total and self._failure is None:
                if not self._drive():
                    time.sleep(self.config.poll_interval)
            if self._failure is not None:
                raise self._failure
            return self.cells
        finally:
            self._shutdown_fleet()
            self.stats.handshakes_rejected = getattr(
                self._transport, "rejected", 0)
            self._transport.close()

    def _stragglers(self, now: float) -> int:
        """Workers silent for more than a quarter of the lease timeout --
        not yet revocable, but visibly behind the fleet's cadence."""
        cutoff = self.config.lease_timeout / 4.0
        return sum(1 for worker in self._workers.values()
                   if now - worker.last_seen > cutoff)

    def _drive(self) -> bool:
        """One poll round: pump messages, expire leases.  True if any
        message was handled (the caller sleeps otherwise)."""
        progressed = False
        now = self._clock()
        if self._transport is not None:  # boundary tests drive bare
            for channel, hello in self._transport.poll_peers():
                self._adopt_remote(channel, hello, now)
                progressed = True
        for worker_id in list(self._workers):
            worker = self._workers.get(worker_id)
            if worker is None:
                continue
            try:
                while worker.handle.channel.poll():
                    env = worker.handle.channel.recv(timeout=0.0)
                    if env is None:
                        break
                    self._handle(worker, env, now)
                    progressed = True
            except ChannelClosed:
                self._lose_worker(worker_id, now, reason="channel-closed")
                continue
            except FabricError:
                # A live channel speaking nonsense (unexpected kind,
                # malformed envelope): treat it exactly like a death --
                # revoke, requeue, replace -- instead of taking the
                # coordinator down with it.
                self._lose_worker(worker_id, now, reason="protocol-error")
                continue
            if not worker.handle.is_alive():
                self._lose_worker(worker_id, now, reason="dead")
            elif now - worker.last_seen > self.config.lease_timeout:
                self._tel_event("lease.expired", worker_id=worker_id,
                                silent_for=now - worker.last_seen,
                                timeout=self.config.lease_timeout)
                self._lose_worker(worker_id, now, reason="lease-expired")
        if self.telemetry is not None:
            self.telemetry.tick(len(self.cells),
                                active_workers=len(self._workers),
                                stragglers=self._stragglers(now))
        return progressed

    def _shutdown_fleet(self) -> None:
        now = self._clock()
        for worker_id, worker in sorted(self._workers.items()):
            try:
                worker.handle.channel.send(
                    Envelope(kind=SHUTDOWN, sender=COORDINATOR))
            except (ChannelClosed, OSError):
                pass
            self._record_lifetime(worker_id, worker.handle, now)
            self._tel_event("worker.exit", worker_id=worker_id,
                            reason="shutdown",
                            lifetime_s=now - worker.handle.started)
        for _worker_id, worker in sorted(self._workers.items()):
            worker.handle.join(2.0)
            worker.handle.kill()
            worker.handle.channel.close()
        self._workers.clear()


# -- public entry point -----------------------------------------------------


def execute_sweep_fabric(spec: ExperimentSpec,
                         seeds: "Sequence[int] | int | None" = None,
                         *,
                         workers: "int | None" = None,
                         transport: "str | None" = None,
                         config: "FabricConfig | None" = None,
                         cache_dir: "str | os.PathLike | None" = None,
                         on_point: "Callable[[float, int], None] | None" = None,
                         on_cell: "Callable[[int, int], None] | None" = None,
                         obs_session: "obs.ObsSession | None" = None,
                         runtime_dir: "str | os.PathLike | None" = None,
                         progress: bool = False,
                         progress_stream=None,
                         ) -> "tuple[SweepResult, SweepTiming, FabricStats]":
    """Run a sweep on the coordinator/worker fabric.

    Drop-in sibling of :func:`~repro.experiments.executor.execute_sweep`:
    the merged :class:`SweepResult` is **byte-identical** to the serial
    reference for any worker count, transport, injected worker loss, or
    cache state.  Returns ``(result, timing, stats)``; ``stats`` carries
    the fabric's operational counters (leases, requeues, heartbeats,
    worker lifetimes), which -- unlike the result -- legitimately vary
    run to run.

    ``on_cell(xi, si)`` fires after each newly computed cell has been
    stored (the resumability hook: everything already fired is on disk).

    ``runtime_dir`` switches on the wall-clock telemetry plane
    (:mod:`repro.obs.runtime`): coordinator and worker span files, the
    Chrome fleet timeline, periodic metric snapshots, and a Prometheus
    textfile land there.  ``progress`` prints a live ticker.  Neither
    affects the deterministic result, traces, or metrics in any way.
    """
    from repro.experiments.executor import _normalize_seeds

    if config is None:
        config = FabricConfig()
    if workers is not None:
        config = replace(config, workers=workers)
    if transport is not None:
        config = replace(config, transport=transport)
    seed_list = _normalize_seeds(spec, seeds)
    instrument = obs_session is not None
    total = len(spec.x_values) * len(seed_list)
    telemetry = RunTelemetry.create(runtime_dir, progress=progress,
                                    total_cells=total,
                                    progress_stream=progress_stream)
    cache = (CellCache(cache_dir, telemetry=telemetry)
             if cache_dir is not None else None)
    started = time.perf_counter()  # simlint: disable=SL001 (perf record of the host run, not simulated time)

    if on_point is not None:
        for x in spec.x_values:
            for seed in seed_list:
                on_point(x, seed)

    coordinator = Coordinator(spec, seed_list, config=config, cache=cache,
                              instrument=instrument, on_cell=on_cell,
                              telemetry=telemetry)
    try:
        cells = coordinator.run()
    except BaseException:
        if telemetry is not None:
            telemetry.finalize(state="failed")
        raise
    result = merge_cells(spec, seed_list, cells)
    if obs_session is not None:
        fold_obs(obs_session, spec, seed_list, cells)
        _fold_fabric_metrics(obs_session, coordinator.stats)

    wall = time.perf_counter() - started  # simlint: disable=SL001 (perf record of the host run, not simulated time)
    computed_keys = sorted(coordinator._cell_specs)
    computed = [cells[key] for key in computed_keys]
    walls = wall_stats(coordinator.cell_walls)
    timing = SweepTiming(
        scenario=spec.name, jobs=config.workers, wall_time=wall,
        cells_total=total, cells_computed=len(computed_keys),
        cache_hits=total - len(computed_keys),
        iterations=sum(cell.iterations for cell in computed),
        engine_events=sum(cell.engine_events for cell in computed),
        x_points=len(spec.x_values), seeds=len(seed_list),
        mode="fabric", cell_wall_p50=walls["p50"],
        cell_wall_p95=walls["p95"], cell_wall_max=walls["max"])
    if telemetry is not None:
        metrics = telemetry.metrics
        metrics.counter("runtime.cells_computed_total").inc(
            len(computed_keys))
        metrics.counter("runtime.cache_hits_total").inc(
            total - len(computed_keys))
        metrics.counter("runtime.cells_requeued_total").inc(
            coordinator.stats.requeued_cells)
        metrics.counter("runtime.duplicate_results_total").inc(
            coordinator.stats.duplicate_results)
        metrics.counter("runtime.heartbeats_total").inc(
            coordinator.stats.heartbeats)
        telemetry.finalize(done=len(cells))
    return result, timing, coordinator.stats


#: Worker-lifetime histogram buckets (seconds of host wall time).
LIFETIME_BUCKETS = (0.1, 0.5, 1.0, 5.0, 15.0, 60.0, 300.0)


def _fold_fabric_metrics(session: "obs.ObsSession", stats: FabricStats,
                         ) -> None:
    """Record the fabric's operational counters into the obs registry.

    These are host-side, wall-clock-flavored metrics (``fabric.*``) --
    deliberately separate from the deterministic simulation metrics, and
    excluded from any byte-identity comparison.
    """
    metrics = session.metrics
    metrics.counter("fabric.leases_total").inc(stats.leases)
    metrics.counter("fabric.cells_requeued_total").inc(stats.requeued_cells)
    metrics.counter("fabric.leases_revoked_total").inc(stats.revoked_leases)
    metrics.counter("fabric.heartbeats_total").inc(stats.heartbeats)
    metrics.counter("fabric.work_requests_total").inc(stats.work_requests)
    metrics.counter("fabric.workers_started_total").inc(stats.workers_started)
    metrics.counter("fabric.workers_lost_total").inc(stats.workers_lost)
    metrics.counter("fabric.duplicate_results_total").inc(
        stats.duplicate_results)
    for worker_id in sorted(stats.worker_lifetimes):
        metrics.histogram("fabric.worker_lifetime_seconds",
                          LIFETIME_BUCKETS).observe(
            stats.worker_lifetimes[worker_id])
