"""Remote-worker bootstrap: ``python -m repro.experiments.fabric``.

The cross-host half of the TCP transport.  A coordinator started with
``--fabric-transport tcp --listen HOST:PORT`` prints its bound address
on stderr and a run token; on any machine with the same checkout, this
entry point connects one worker to it::

    python -m repro.experiments.fabric worker HOST:PORT --token T

The worker handshakes (token, protocol version, spec fingerprint),
resolves the coordinator's scenario from the local registry, serves
cells until the sweep drains, and exits 0.  Every refusal -- wrong
token, diverged checkout, unreachable coordinator -- is a one-line
message on stderr and exit status 2, never a traceback.
"""

import argparse
import sys
import time

from repro.errors import FabricError
from repro.experiments.fabric.core import run_remote_worker


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.fabric",
        description="Connect a sweep worker to a remote fabric "
                    "coordinator.")
    sub = parser.add_subparsers(dest="command", required=True)
    worker = sub.add_parser(
        "worker", help="serve cells for the coordinator at ADDRESS")
    worker.add_argument("address", metavar="HOST:PORT",
                        help="the coordinator's --listen address")
    worker.add_argument("--token", required=True,
                        help="the run's shared secret (printed by the "
                             "coordinator, or fixed via --fabric-token)")
    worker.add_argument("--worker-id", default=None,
                        help="request a specific worker id (default: the "
                             "coordinator assigns one)")
    worker.add_argument("--handshake-timeout", type=float, default=10.0,
                        help="seconds to wait for connect + WELCOME "
                             "(default: %(default)s)")
    worker.add_argument("--retry-for", type=float, default=0.0,
                        metavar="SECONDS",
                        help="keep retrying an unreachable coordinator "
                             "for this long before giving up (default: "
                             "0, fail on the first refusal) -- lets a "
                             "worker be started before its coordinator "
                             "binds")
    args = parser.parse_args(argv)

    deadline = time.monotonic() + args.retry_for  # simlint: disable=SL001 (CLI retry deadline, host time)
    try:
        while True:
            try:
                worker_id = run_remote_worker(
                    args.address, args.token, worker_id=args.worker_id,
                    handshake_timeout=args.handshake_timeout)
                break
            except FabricError as exc:
                unreachable = "cannot reach coordinator" in str(exc)
                if not unreachable \
                        or time.monotonic() >= deadline:  # simlint: disable=SL001 (CLI retry deadline, host time)
                    raise
                time.sleep(0.1)
    except (FabricError, OSError) as exc:
        print(f"fabric worker: {exc}", file=sys.stderr)
        return 2
    print(f"fabric worker {worker_id}: sweep drained, shutting down",
          file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
