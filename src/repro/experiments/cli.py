"""Command-line entry point: regenerate any figure from a terminal.

Examples
--------

::

    python -m repro.experiments fig4
    python -m repro.experiments fig7 --seeds 10 --chart
    python -m repro.experiments --list
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments.report import ascii_chart, format_table, shape_summary
from repro.experiments.runner import run_sweep
from repro.experiments.scenarios import ALL_SCENARIOS, get_scenario


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the figures of 'Policies for Swapping "
                    "MPI Processes' (HPDC 2003).")
    parser.add_argument("scenario", nargs="?",
                        help="scenario name (e.g. fig4), or 'all' to "
                             "regenerate every figure; see --list")
    parser.add_argument("--outdir", metavar="DIR", default="figures",
                        help="output directory for 'all' "
                             "(default: figures/)")
    parser.add_argument("--seeds", type=int, default=None,
                        help="number of replicated seeds (default: "
                             "scenario-specific)")
    parser.add_argument("--chart", action="store_true",
                        help="also draw an ASCII chart")
    parser.add_argument("--events", action="store_true",
                        help="show mean swap/restart counts per cell")
    parser.add_argument("--baseline", default="nothing",
                        help="series used for ratio columns "
                             "(default: nothing)")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="also write the full sweep result as JSON")
    parser.add_argument("--csv", metavar="PATH", default=None,
                        help="also write per-x means/stds as CSV")
    parser.add_argument("--svg", metavar="PATH", default=None,
                        help="also render the sweep as an SVG line chart")
    parser.add_argument("--list", action="store_true", dest="list_scenarios",
                        help="list available scenarios and exit")
    return parser


def main(argv: "list[str] | None" = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_scenarios:
        for name, spec in sorted(ALL_SCENARIOS.items()):
            print(f"{name:>22}: {spec.title}")
        return 0

    if not args.scenario:
        parser.print_usage()
        return 2

    if args.scenario == "all":
        return regenerate_all(args)

    spec = get_scenario(args.scenario)
    started = time.perf_counter()  # simlint: disable=SL001 (CLI wall-clock display)
    result = run_sweep(spec, seeds=args.seeds)
    elapsed = time.perf_counter() - started  # simlint: disable=SL001 (CLI wall-clock display)

    baseline = args.baseline if args.baseline in result.series else None
    print(format_table(result, baseline=baseline, show_events=args.events))
    if baseline:
        print()
        print(shape_summary(result, baseline=baseline))
    if args.chart:
        print()
        print(ascii_chart(result))
    if args.json:
        result.to_json(args.json)
        print(f"\nwrote {args.json}")
    if args.csv:
        result.to_csv(args.csv)
        print(f"wrote {args.csv}")
    if args.svg:
        from repro.experiments.svgplot import write_svg
        write_svg(result, args.svg)
        print(f"wrote {args.svg}")
    print(f"\n[{len(result.seeds)} seeds, {elapsed:.2f}s]")
    return 0


def regenerate_all(args) -> int:
    """Run every scenario; write table/SVG/CSV/JSON per figure."""
    from pathlib import Path

    from repro.experiments.svgplot import write_svg

    outdir = Path(args.outdir)
    outdir.mkdir(parents=True, exist_ok=True)
    for name, spec in sorted(ALL_SCENARIOS.items()):
        started = time.perf_counter()  # simlint: disable=SL001 (CLI wall-clock display)
        result = run_sweep(spec, seeds=args.seeds)
        elapsed = time.perf_counter() - started  # simlint: disable=SL001 (CLI wall-clock display)
        baseline = "nothing" if "nothing" in result.series else None
        (outdir / f"{name}.txt").write_text(
            format_table(result, baseline=baseline) + "\n")
        if all(x != float("inf") for x in result.x_values):
            write_svg(result, outdir / f"{name}.svg")
        result.to_csv(outdir / f"{name}.csv")
        result.to_json(outdir / f"{name}.json")
        print(f"{name:>22}: {len(result.x_values)} points x "
              f"{len(result.seeds)} seeds in {elapsed:5.2f}s -> "
              f"{outdir}/{name}.{{txt,svg,csv,json}}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
