"""Command-line entry point: regenerate any figure from a terminal.

Examples
--------

::

    python -m repro.experiments fig4
    python -m repro.experiments fig4 --jobs 4
    python -m repro.experiments fig7 --seeds 10 --chart
    python -m repro.experiments --list

Sweep cells are cached under ``--cache-dir`` (content-addressed; see
docs/PERFORMANCE.md), so an interrupted or repeated run only computes
missing cells; ``--no-cache`` forces a full recompute.  Each run folds a
machine-readable timing record into ``BENCH_sweeps.json``.
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.executor import append_bench_record, execute_sweep
from repro.experiments.report import ascii_chart, format_table, shape_summary
from repro.experiments.scenarios import ALL_SCENARIOS, get_scenario


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the figures of 'Policies for Swapping "
                    "MPI Processes' (HPDC 2003).")
    parser.add_argument("scenario", nargs="?",
                        help="scenario name (e.g. fig4), or 'all' to "
                             "regenerate every figure; see --list")
    parser.add_argument("--outdir", metavar="DIR", default="figures",
                        help="output directory for 'all' "
                             "(default: figures/)")
    parser.add_argument("--seeds", type=int, default=None,
                        help="number of replicated seeds (default: "
                             "scenario-specific)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for sweep cells "
                             "(default: 1, serial reference path)")
    parser.add_argument("--fabric", action="store_true",
                        help="run on the coordinator/worker sweep fabric "
                             "instead of the process pool (see "
                             "docs/FABRIC.md); result stays byte-identical")
    parser.add_argument("--workers", type=int, default=4, metavar="N",
                        help="fabric worker count (default: 4; only with "
                             "--fabric)")
    parser.add_argument("--fabric-transport",
                        choices=("thread", "process", "socket", "tcp"),
                        default="process",
                        help="fabric transport (default: process; 'tcp' "
                             "binds --listen and accepts remote workers "
                             "mid-run)")
    parser.add_argument("--listen", metavar="HOST:PORT",
                        default="127.0.0.1:0",
                        help="tcp transport only: the coordinator's bind "
                             "address (default: 127.0.0.1:0, an ephemeral "
                             "loopback port; the bound address is printed "
                             "on stderr)")
    parser.add_argument("--fabric-token", metavar="TOKEN", default=None,
                        help="tcp transport only: shared secret remote "
                             "workers must present (default: a fresh "
                             "random token per run, printed on stderr)")
    parser.add_argument("--fabric-chaos", metavar="MODE:WORKER:AFTER",
                        default=None,
                        help="inject a worker loss (e.g. 'crash:0:2' = "
                             "worker w0 dies after 2 cells); CI uses this "
                             "to prove recovery keeps results "
                             "byte-identical")
    parser.add_argument("--cache-dir", metavar="DIR", default=".sweep-cache",
                        help="content-addressed cell cache directory "
                             "(default: .sweep-cache/)")
    parser.add_argument("--no-cache", action="store_true",
                        help="recompute every cell; do not read or write "
                             "the cell cache")
    parser.add_argument("--bench-json", metavar="PATH",
                        default="BENCH_sweeps.json",
                        help="perf-record file updated after each sweep "
                             "(default: BENCH_sweeps.json; for 'all' it is "
                             "written inside --outdir)")
    parser.add_argument("--no-bench", action="store_true",
                        help="do not write the perf record")
    parser.add_argument("--runtime-telemetry", metavar="DIR", default=None,
                        help="write the wall-clock runtime telemetry plane "
                             "into DIR: span files, Chrome fleet timeline, "
                             "metric snapshots, Prometheus textfile (see "
                             "docs/OBSERVABILITY.md 'two planes'); never "
                             "affects results or sim-time traces")
    parser.add_argument("--progress", action="store_true",
                        help="print a live progress ticker (cells done, "
                             "cache hits, active workers, stragglers, ETA) "
                             "to stderr")
    parser.add_argument("--trace", metavar="PATH", default=None,
                        help="write a deterministic decision/event trace "
                             "of the run (see docs/OBSERVABILITY.md)")
    parser.add_argument("--trace-format", choices=("jsonl", "chrome"),
                        default="jsonl",
                        help="trace format: 'jsonl' structured log "
                             "(default) or 'chrome' trace-event JSON for "
                             "chrome://tracing")
    parser.add_argument("--metrics-json", metavar="PATH", default=None,
                        help="write the merged counters/gauges/histograms "
                             "registry as JSON")
    parser.add_argument("--report", metavar="DIR", default=None,
                        help="trace the run and write the analytics report "
                             "(report.md + gantt.svg) into DIR; implies "
                             "instrumentation even without --trace")
    parser.add_argument("--chart", action="store_true",
                        help="also draw an ASCII chart")
    parser.add_argument("--events", action="store_true",
                        help="show mean swap/restart counts per cell")
    parser.add_argument("--baseline", default="nothing",
                        help="series used for ratio columns "
                             "(default: nothing)")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="also write the full sweep result as JSON")
    parser.add_argument("--csv", metavar="PATH", default=None,
                        help="also write per-x means/stds as CSV")
    parser.add_argument("--svg", metavar="PATH", default=None,
                        help="also render the sweep as an SVG line chart")
    parser.add_argument("--list", action="store_true", dest="list_scenarios",
                        help="list available scenarios and exit")
    return parser


def main(argv: "list[str] | None" = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_scenarios:
        for name, spec in sorted(ALL_SCENARIOS.items()):
            print(f"{name:>22}: {spec.title}")
        return 0

    if not args.scenario:
        parser.print_usage()
        return 2

    if args.scenario == "all":
        return regenerate_all(args)

    spec = get_scenario(args.scenario)
    session = _make_session(args)
    result, timing, fabric_stats = _execute(args, spec, session)

    baseline = args.baseline if args.baseline in result.series else None
    print(format_table(result, baseline=baseline, show_events=args.events))
    if baseline:
        print()
        print(shape_summary(result, baseline=baseline))
    if args.chart:
        print()
        print(ascii_chart(result))
    if args.json:
        result.to_json(args.json)
        print(f"\nwrote {args.json}")
    if args.csv:
        result.to_csv(args.csv)
        print(f"wrote {args.csv}")
    if args.svg:
        from repro.experiments.svgplot import write_svg
        write_svg(result, args.svg)
        print(f"wrote {args.svg}")
    _write_obs(args, session)
    if not args.no_bench:
        append_bench_record(args.bench_json, timing)
        print(f"\nwrote perf record to {args.bench_json}")
    if fabric_stats is not None:
        print(f"\n[fabric: {fabric_stats.workers} {fabric_stats.transport} "
              f"worker(s), {fabric_stats.leases} leases, "
              f"{fabric_stats.requeued_cells} requeued, "
              f"{fabric_stats.workers_lost} worker(s) lost]")
    print(f"\n[{len(result.seeds)} seeds, {timing.jobs} job(s), "
          f"{timing.wall_time:.2f}s; {timing.cells_computed}/"
          f"{timing.cells_total} cells computed, {timing.cache_hits} "
          f"cache hits, {timing.events_per_sec:.0f} events/s]")
    return 0


def _execute(args, spec, session):
    """Run one sweep on whichever backend the flags picked.

    Returns ``(result, timing, fabric_stats)`` with ``fabric_stats``
    None on the pool path.
    """
    cache_dir = None if args.no_cache else args.cache_dir
    if not args.fabric:
        if args.fabric_chaos is not None:
            raise SystemExit("--fabric-chaos needs --fabric")
        if args.fabric_token is not None:
            raise SystemExit("--fabric-token needs --fabric")
        result, timing = execute_sweep(spec, seeds=args.seeds,
                                       jobs=args.jobs, cache_dir=cache_dir,
                                       obs_session=session,
                                       runtime_dir=args.runtime_telemetry,
                                       progress=args.progress)
        return result, timing, None
    from repro.experiments.fabric import (FabricConfig, WorkerChaos,
                                          execute_sweep_fabric)

    chaos = (WorkerChaos.parse(args.fabric_chaos)
             if args.fabric_chaos is not None else None)
    config = FabricConfig(workers=args.workers,
                          transport=args.fabric_transport, chaos=chaos,
                          listen=args.listen, token=args.fabric_token)
    return execute_sweep_fabric(spec, seeds=args.seeds, config=config,
                                cache_dir=cache_dir, obs_session=session,
                                runtime_dir=args.runtime_telemetry,
                                progress=args.progress)


def _make_session(args):
    """An ObsSession when --trace/--metrics-json/--report asked for one."""
    if args.trace is None and args.metrics_json is None \
            and args.report is None:
        return None
    from repro import obs

    return obs.ObsSession()


def _write_obs(args, session) -> None:
    """Write the trace/metrics files and analytics report a session
    collected."""
    if session is None:
        return
    if args.trace is not None:
        if args.trace_format == "chrome":
            session.trace.write_chrome(args.trace)
        else:
            session.trace.write_jsonl(args.trace)
        print(f"wrote {len(session.trace)} trace records "
              f"({args.trace_format}) to {args.trace}")
    if args.metrics_json is not None:
        session.metrics.write_json(args.metrics_json)
        print(f"wrote metrics registry to {args.metrics_json}")
    if args.report is not None:
        from repro.obs.analyze import TraceSet
        from repro.obs.report import write_report

        md_path, svg_path, findings = write_report(
            TraceSet.from_recorder(session.trace), args.report,
            metrics=session.metrics)
        print(f"wrote run report to {md_path} (+ {svg_path.name})")
        if findings:
            for finding in findings:
                print(f"  {finding}")
            print(f"  {len(findings)} trace lint finding(s)")


def regenerate_all(args) -> int:
    """Run every scenario; write table/SVG/CSV/JSON per figure."""
    from pathlib import Path

    from repro.experiments.svgplot import write_svg

    outdir = Path(args.outdir)
    outdir.mkdir(parents=True, exist_ok=True)
    bench_path = outdir / "BENCH_sweeps.json"
    session = _make_session(args)
    runtime_base = args.runtime_telemetry
    for name, spec in sorted(ALL_SCENARIOS.items()):
        if runtime_base is not None:
            # One run directory per scenario: span files, timeline, and
            # progress.json are per-run artifacts.
            args.runtime_telemetry = str(Path(runtime_base) / name)
        result, timing, _fabric_stats = _execute(args, spec, session)
        baseline = "nothing" if "nothing" in result.series else None
        (outdir / f"{name}.txt").write_text(
            format_table(result, baseline=baseline) + "\n")
        if all(x != float("inf") for x in result.x_values):
            write_svg(result, outdir / f"{name}.svg")
        result.to_csv(outdir / f"{name}.csv")
        result.to_json(outdir / f"{name}.json")
        if not args.no_bench:
            append_bench_record(bench_path, timing)
        print(f"{name:>22}: {len(result.x_values)} points x "
              f"{len(result.seeds)} seeds in {timing.wall_time:5.2f}s "
              f"({timing.cells_computed} cells, {timing.cache_hits} cache "
              f"hits) -> {outdir}/{name}.{{txt,svg,csv,json}}")
    _write_obs(args, session)
    if not args.no_bench:
        print(f"wrote perf records to {bench_path}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
