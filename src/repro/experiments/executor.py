"""Parallel sweep execution with a content-addressed cell cache.

A sweep is a grid of independent *cells*: one ``(x value, seed)`` pair,
inside which every variant runs back-to-back on one shared platform (the
paper's identical-environments methodology lives entirely *inside* a
cell).  Cells never communicate, so the executor can

* fan them out over a :class:`concurrent.futures.ProcessPoolExecutor`
  (``jobs > 1``) while keeping the merged :class:`~repro.experiments.
  runner.SweepResult` **bit-identical** to the serial reference: results
  are keyed by grid coordinates and merged in ``(x, seed)`` order, so
  completion order is irrelevant, and floats cross process boundaries via
  pickle (exact) or JSON ``repr`` round-trips (also exact);
* skip cells whose results are already on disk: the cache key is a
  SHA-256 over the scenario name, the spec fingerprint (declarative
  fields plus builder source), the cell coordinates, and the package
  version, so edited scenarios or upgraded code never reuse stale
  entries.  Entries that fail to parse or whose recorded digest does not
  match are treated as misses and recomputed, never trusted.

``jobs=1`` executes the same ``compute_cell`` function in-process, in
grid order -- that path is the reference implementation the equivalence
tests compare against.

Every execution also produces a :class:`SweepTiming` -- wall time, cells
computed vs. cache hits, simulated iterations, and kernel events per
second (via :func:`repro.simkernel.engine.events_processed_total`) --
which :func:`append_bench_record` folds into a ``BENCH_sweeps.json``
perf-trajectory file.
"""

from __future__ import annotations

import json
import os
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from hashlib import sha256
from pathlib import Path
from typing import Callable, Sequence

import numpy as np

from repro import obs
from repro._version import __version__
from repro.errors import ExperimentError
from repro.experiments.runner import SeriesStats, SweepResult
from repro.experiments.scenarios import ExperimentSpec
from repro.simkernel import engine as _engine
from repro.strategies.base import ExecutionResult

#: Cell payload schema version; bump to invalidate every cached entry.
#: (2: cells carry observability payloads -- trace records + metrics.
#:  3: cells computed by the vectorized trace kernels / lowered plans --
#:  makespans are float-identical but the perf counters changed meaning.)
CACHE_FORMAT = 3


# -- one cell ---------------------------------------------------------------


@dataclass
class CellResult:
    """Everything the deterministic merge needs from one ``(x, seed)`` cell."""

    labels: "list[str]"
    """Variant labels in builder order (the merge preserves this order)."""
    makespans: "dict[str, float]"
    events: "dict[str, float]"
    """Swaps + restarts per variant, as floats (matches the serial runner)."""
    iterations: int
    """Simulated iterations executed across all variants of the cell."""
    engine_events: int
    """Kernel events processed while computing the cell (0 for the purely
    analytic iteration-level simulators)."""
    trace_events: "list[dict]" = field(default_factory=list)
    """Structured :mod:`repro.obs` records, in execution order (empty
    unless the cell was computed with ``instrument=True``)."""
    metrics: dict = field(default_factory=dict)
    """The cell's :meth:`~repro.obs.MetricsRegistry.to_dict` payload
    (empty unless instrumented)."""

    def to_payload(self) -> dict:
        return {"labels": list(self.labels),
                "makespans": dict(self.makespans),
                "events": dict(self.events),
                "iterations": int(self.iterations),
                "engine_events": int(self.engine_events),
                "trace_events": list(self.trace_events),
                "metrics": dict(self.metrics)}

    @classmethod
    def from_payload(cls, payload: dict) -> "CellResult":
        labels = [str(label) for label in payload["labels"]]
        makespans = {str(k): float(v) for k, v in payload["makespans"].items()}
        events = {str(k): float(v) for k, v in payload["events"].items()}
        if set(labels) != set(makespans) or set(labels) != set(events):
            raise ValueError("cell payload labels disagree with its series")
        return cls(labels=labels, makespans=makespans, events=events,
                   iterations=int(payload["iterations"]),
                   engine_events=int(payload["engine_events"]),
                   trace_events=list(payload.get("trace_events", [])),
                   metrics=dict(payload.get("metrics", {})))


def compute_cell(spec: ExperimentSpec, x: float, seed: int, *,
                 instrument: bool = False) -> CellResult:
    """Run every variant of one cell (the serial reference, and the
    function worker processes execute).

    With ``instrument=True`` the cell runs under its own
    :class:`~repro.obs.ObsSession`: every record is stamped with the
    cell's coordinates and variant label, and the session's records and
    metrics ride back in the :class:`CellResult` (picklable, cacheable),
    so the executor can merge them deterministically in grid order.
    """
    events_before = _engine.events_processed_total()
    platform, variants = spec.build(x, seed)
    labels = [label for label, _app, _strategy in variants]
    if len(set(labels)) != len(labels):
        raise ExperimentError(
            f"{spec.name}: duplicate variant labels {labels}")
    makespans: "dict[str, float]" = {}
    events: "dict[str, float]" = {}
    iterations = 0
    session = obs.ObsSession() if instrument else None
    for label, app, strategy in variants:
        if session is not None:
            session.trace.set_context(scenario=spec.name, x=float(x),
                                      seed=int(seed), series=label)
            with obs.observing(session):
                result: ExecutionResult = strategy.run(platform, app)
        else:
            result = strategy.run(platform, app)
        makespans[label] = result.makespan
        events[label] = float(result.swap_count + result.restart_count)
        iterations += result.iteration_count
    return CellResult(labels=labels, makespans=makespans, events=events,
                      iterations=iterations,
                      engine_events=(_engine.events_processed_total()
                                     - events_before),
                      trace_events=(session.trace.records
                                    if session is not None else []),
                      metrics=(session.metrics.to_dict()
                               if session is not None else {}))


def compute_cell_timed(spec: ExperimentSpec, x: float, seed: int, *,
                       instrument: bool = False,
                       ) -> "tuple[CellResult, float]":
    """:func:`compute_cell` plus its wall-clock compute time in seconds.

    The wall time is measured *inside* the computing process (pool
    worker or fabric worker), feeds the per-cell percentile columns of
    :class:`SweepTiming` and the runtime telemetry plane
    (:mod:`repro.obs.runtime`), and never touches the deterministic
    :class:`CellResult` itself.
    """
    started = time.perf_counter()  # simlint: disable=SL001 (runtime-plane wall time, never simulated)
    cell = compute_cell(spec, x, seed, instrument=instrument)
    return cell, time.perf_counter() - started  # simlint: disable=SL001 (runtime-plane wall time, never simulated)


# -- content addressing -----------------------------------------------------


def cell_digest(scenario: str, fingerprint: str, x: float, seed: int, *,
                instrumented: bool = False) -> str:
    """The cache key of one cell.

    ``repr(float(x))`` is the shortest round-tripping spelling, so the key
    is stable across processes and handles non-finite grids (``inf`` in
    the payback ablation).  Instrumented cells carry trace/metrics
    payloads that plain cells lack, so the flag participates in the key --
    a traced run never "hits" an untraced entry (which would silently
    drop its records) and vice versa.
    """
    hasher = sha256()
    for part in (scenario, fingerprint, repr(float(x)), str(int(seed)),
                 __version__, str(CACHE_FORMAT),
                 "obs" if instrumented else ""):
        hasher.update(part.encode("utf-8"))
        hasher.update(b"\x00")
    return hasher.hexdigest()


class CellCache:
    """Content-addressed on-disk store of computed sweep cells.

    Layout: ``<root>/<first two hex digits>/<digest>.json``.  Entries
    embed their own digest and schema version; :meth:`load` re-validates
    both plus the payload structure, so a corrupted or truncated file is
    a cache miss, not a wrong answer.
    """

    def __init__(self, root: "str | os.PathLike", *,
                 telemetry=None) -> None:
        self.root = Path(root)
        #: Optional :class:`repro.obs.runtime.RunTelemetry`; when set,
        #: every load/store is logged as a wall-clock ``cache.*`` span.
        #: Telemetry never changes what the cache returns.
        self.telemetry = telemetry

    def path_for(self, digest: str) -> Path:
        return self.root / digest[:2] / f"{digest}.json"

    def load(self, digest: str) -> "CellResult | None":
        if self.telemetry is None:
            return self._load(digest)
        started = self.telemetry.now()
        cell = self._load(digest)
        self.telemetry.event("cache.load", t=started,
                             dur=self.telemetry.now() - started,
                             digest=digest[:12], hit=cell is not None)
        return cell

    def _load(self, digest: str) -> "CellResult | None":
        try:
            payload = json.loads(self.path_for(digest).read_text())
        except (OSError, ValueError):
            return None
        try:
            if (payload["digest"] != digest
                    or payload["format"] != CACHE_FORMAT):
                return None
            return CellResult.from_payload(payload["cell"])
        except (KeyError, TypeError, ValueError, AttributeError):
            return None

    def store(self, digest: str, cell: CellResult, *, scenario: str,
              x: float, seed: int) -> None:
        """Persist one cell atomically (temp file + rename)."""
        if self.telemetry is None:
            self._store(digest, cell, scenario=scenario, x=x, seed=seed)
            return
        with self.telemetry.span("cache.store", digest=digest[:12],
                                 x=x, seed=seed):
            self._store(digest, cell, scenario=scenario, x=x, seed=seed)

    def _store(self, digest: str, cell: CellResult, *, scenario: str,
               x: float, seed: int) -> None:
        path = self.path_for(digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {"format": CACHE_FORMAT, "digest": digest,
                   "scenario": scenario, "x": x, "seed": seed,
                   "version": __version__, "cell": cell.to_payload()}
        tmp = path.with_name(f"{path.name}.tmp{os.getpid()}")
        tmp.write_text(json.dumps(payload, sort_keys=True))
        os.replace(tmp, path)


# -- timing record ----------------------------------------------------------


@dataclass(frozen=True)
class SweepTiming:
    """Machine-readable performance record of one sweep execution.

    ``iterations`` and ``engine_events`` count only the cells *computed*
    in this run -- cache hits did no simulation work.
    """

    scenario: str
    jobs: int
    wall_time: float
    cells_total: int
    cells_computed: int
    cache_hits: int
    iterations: int
    engine_events: int
    x_points: int
    seeds: int
    mode: str = "pool"
    """Execution backend: ``"pool"`` (in-process / ProcessPoolExecutor)
    or ``"fabric"`` (coordinator + workers, :mod:`.fabric`)."""
    cell_wall_p50: float = 0.0
    """Median wall seconds per *computed* cell (0.0 when every cell was
    a cache hit).  Measured inside the computing process."""
    cell_wall_p95: float = 0.0
    cell_wall_max: float = 0.0

    @property
    def cells_per_sec(self) -> float:
        return self.cells_computed / self.wall_time if self.wall_time > 0 else 0.0

    @property
    def events_per_sec(self) -> float:
        """Kernel event throughput (``Simulator.processed_events`` deltas)."""
        return self.engine_events / self.wall_time if self.wall_time > 0 else 0.0

    @property
    def iterations_per_sec(self) -> float:
        return self.iterations / self.wall_time if self.wall_time > 0 else 0.0

    def to_dict(self) -> dict:
        return {
            "scenario": self.scenario,
            "mode": self.mode,
            "jobs": self.jobs,
            "wall_time_s": self.wall_time,
            "cells_total": self.cells_total,
            "cells_computed": self.cells_computed,
            "cache_hits": self.cache_hits,
            "iterations": self.iterations,
            "engine_events": self.engine_events,
            "x_points": self.x_points,
            "seeds": self.seeds,
            "cells_per_sec": self.cells_per_sec,
            "events_per_sec": self.events_per_sec,
            "iterations_per_sec": self.iterations_per_sec,
            "cell_wall_p50_s": self.cell_wall_p50,
            "cell_wall_p95_s": self.cell_wall_p95,
            "cell_wall_max_s": self.cell_wall_max,
        }


#: Distinguishes concurrent same-process writers of one bench file.
_BENCH_TMP_SEQ = iter(range(1, 1 << 62))


def append_bench_record(path: "str | os.PathLike",
                        timing: SweepTiming) -> dict:
    """Fold one timing record into a ``BENCH_sweeps.json`` file.

    Records are keyed by ``(scenario, mode, jobs)``; the latest run wins,
    and the file stays sorted so diffs across commits read as a
    trajectory.  Document version 4 added the per-cell wall-time
    percentile columns (``cell_wall_p50_s``/``p95``/``max``); legacy
    version-2/3 records still parse (they simply lack those keys, and
    pre-version-3 records default to mode ``"pool"``).  The write is atomic (temp file + ``os.replace``, the
    cell cache's pattern), so a reader -- or a concurrent sweep
    invocation -- never observes a half-written file; an existing file
    that fails to parse is preserved next to the new one (``.corrupt``
    suffix) rather than silently destroyed.  Returns the document
    written.
    """
    path = Path(path)
    records: "dict[tuple[str, str, int], dict]" = {}
    try:
        text = path.read_text()
    except OSError:
        text = None
    if text is not None:
        try:
            for record in json.loads(text)["records"]:
                record.setdefault("mode", "pool")
                records[(str(record["scenario"]), str(record["mode"]),
                         int(record["jobs"]))] = record
        except (ValueError, TypeError, KeyError, AttributeError):
            # Unparseable perf file: keep the evidence, start fresh.
            path.with_name(f"{path.name}.corrupt").write_text(text)
            records = {}
    record = timing.to_dict()
    records[(record["scenario"], record["mode"], record["jobs"])] = record
    doc = {"version": 4, "tool": "sweep-bench",
           "records": [records[key] for key in sorted(records)]}
    path.parent.mkdir(parents=True, exist_ok=True)
    # Unique per process *and* per call: concurrent appenders (processes
    # or threads) each replace a complete document, never share a temp.
    tmp = path.with_name(
        f"{path.name}.tmp{os.getpid()}-{next(_BENCH_TMP_SEQ)}")
    tmp.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    os.replace(tmp, path)
    return doc


# -- the executor -----------------------------------------------------------


def _normalize_seeds(spec: ExperimentSpec,
                     seeds: "Sequence[int] | int | None") -> "list[int]":
    if seeds is None:
        seeds = range(spec.default_seeds)
    elif isinstance(seeds, int):
        seeds = range(seeds)
    seed_list = list(seeds)
    if not seed_list:
        raise ExperimentError("need at least one seed")
    return seed_list


#: One not-yet-computed cell: grid coordinates, values, and cache digest
#: (``""`` when caching is off).
PendingCell = "tuple[int, int, float, int, str]"


def plan_cells(spec: ExperimentSpec, seed_list: "list[int]",
               cache: "CellCache | None", *, instrument: bool = False,
               on_point: "Callable[[float, int], None] | None" = None,
               ) -> "tuple[dict[tuple[int, int], CellResult], list[PendingCell]]":
    """Grid-order cache scan shared by the pool executor and the fabric.

    Returns ``(cells, pending)``: the cache hits keyed by ``(xi, si)``
    and the grid-ordered list of cells still to compute (with the digest
    each result should be stored under).  ``on_point`` fires once per
    cell -- hit or miss -- in grid order.
    """
    fingerprint = spec.fingerprint() if cache is not None else ""
    cells: "dict[tuple[int, int], CellResult]" = {}
    pending: "list[PendingCell]" = []
    for xi, x in enumerate(spec.x_values):
        for si, seed in enumerate(seed_list):
            if on_point is not None:
                on_point(x, seed)
            digest = ""
            if cache is not None:
                digest = cell_digest(spec.name, fingerprint, x, seed,
                                     instrumented=instrument)
                cached = cache.load(digest)
                if cached is not None:
                    cells[(xi, si)] = cached
                    continue
            pending.append((xi, si, x, seed, digest))
    return cells, pending


def fold_obs(obs_session: "obs.ObsSession", spec: ExperimentSpec,
             seed_list: "list[int]",
             cells: "dict[tuple[int, int], CellResult]") -> None:
    """Fold per-cell trace records and metrics into ``obs_session``.

    Strictly grid order, exactly like :func:`merge_cells`: completion
    order, worker count, and cache state cannot reorder the merged trace.
    """
    for xi, _x in enumerate(spec.x_values):
        for si, _seed in enumerate(seed_list):
            cell = cells[(xi, si)]
            obs_session.trace.extend(cell.trace_events)
            obs_session.metrics.merge_dict(cell.metrics)


def cell_failure(spec: ExperimentSpec, x: float, seed: int,
                 exc: BaseException) -> ExperimentError:
    """The error raised when one cell's computation fails.

    Always carries the cell's full coordinates -- ``(scenario, x, seed)``
    -- so a failure deep inside a worker process (or a fabric worker on
    another machine) is attributable without re-running the sweep.
    """
    return ExperimentError(
        f"{spec.name}: cell (x={x!r}, seed={seed}) failed: "
        f"{type(exc).__name__}: {exc}")


def merge_cells(spec: ExperimentSpec, seed_list: "list[int]",
                cells: "dict[tuple[int, int], CellResult]") -> SweepResult:
    """Aggregate cells into a :class:`SweepResult`, in grid order.

    This is the serial runner's aggregation loop verbatim, reading cell
    results instead of running strategies: per x, makespans accumulate in
    seed order and series appear in first-encounter (builder) order, so
    the output is byte-identical no matter how the cells were produced.
    """
    series: "dict[str, SeriesStats]" = {}
    for xi, _x in enumerate(spec.x_values):
        per_series_makespans: "dict[str, list[float]]" = {}
        per_series_events: "dict[str, list[float]]" = {}
        for si, _seed in enumerate(seed_list):
            cell = cells[(xi, si)]
            for label in cell.labels:
                per_series_makespans.setdefault(label, []).append(
                    cell.makespans[label])
                per_series_events.setdefault(label, []).append(
                    cell.events[label])
        for label, makespans in per_series_makespans.items():
            stats = series.setdefault(label, SeriesStats())
            stats.mean.append(float(np.mean(makespans)))
            stats.std.append(float(np.std(makespans)))
            stats.raw.append(makespans)
            stats.swap_counts.append(float(np.mean(per_series_events[label])))

    lengths = {label: len(s.mean) for label, s in series.items()}
    if len(set(lengths.values())) != 1:
        raise ExperimentError(
            f"{spec.name}: ragged series lengths {lengths} -- a variant "
            f"was not produced at every x value")

    return SweepResult(name=spec.name, title=spec.title, xlabel=spec.xlabel,
                       x_values=list(spec.x_values), series=series,
                       seeds=seed_list, paper_claim=spec.paper_claim)


def execute_sweep(spec: ExperimentSpec,
                  seeds: "Sequence[int] | int | None" = None,
                  *,
                  jobs: int = 1,
                  cache_dir: "str | os.PathLike | None" = None,
                  on_point: "Callable[[float, int], None] | None" = None,
                  obs_session: "obs.ObsSession | None" = None,
                  runtime_dir: "str | os.PathLike | None" = None,
                  progress: bool = False,
                  ) -> "tuple[SweepResult, SweepTiming]":
    """Run a sweep over its ``(x, seed)`` cells and merge deterministically.

    Parameters
    ----------
    spec:
        The scenario to run.
    seeds:
        An iterable of seeds, an int (``range(seeds)``), or None
        (``range(spec.default_seeds)``).
    jobs:
        Worker processes.  ``1`` (the default) runs every cell in-process
        in grid order -- the reference implementation.  ``jobs > 1``
        requires the spec's builder to be picklable (a module-level
        function, as all registered scenarios are).
    cache_dir:
        Root of the content-addressed cell cache, or None to disable
        caching.  Only cells missing from the cache are computed.
    on_point:
        Progress callback invoked as ``on_point(x, seed)`` once per cell
        (including cache hits), in grid order, before any cell executes.
    obs_session:
        Observation sink (:class:`repro.obs.ObsSession`), or None (the
        default: zero instrumentation).  When given, every cell runs
        instrumented and its trace records / metrics are folded into the
        session **in grid order**, so the merged trace and registry are
        byte-identical for any ``jobs`` / cache configuration.
    runtime_dir:
        Run directory for the *runtime* telemetry plane
        (:mod:`repro.obs.runtime`): wall-clock span log, metrics
        snapshots, progress file, and the derived Chrome timeline /
        Prometheus exports.  None (the default) records nothing.  The
        deterministic outputs above are byte-identical either way.
    progress:
        Print a live progress ticker (cells done/total, cache hits,
        ETA) to stderr while the sweep runs.

    Returns
    -------
    (result, timing):
        The merged sweep result -- bit-identical to the serial run for
        any ``jobs`` / cache state -- and its performance record.
    """
    from repro.obs.runtime import RunTelemetry, wall_stats

    if jobs < 1:
        raise ExperimentError(f"jobs must be >= 1, got {jobs}")
    seed_list = _normalize_seeds(spec, seeds)
    instrument = obs_session is not None
    cells_total = len(spec.x_values) * len(seed_list)
    telemetry = RunTelemetry.create(runtime_dir, progress=progress,
                                    role="executor",
                                    total_cells=cells_total)
    started = time.perf_counter()  # simlint: disable=SL001 (perf record of the host run, not simulated time)

    try:
        cache = (CellCache(cache_dir, telemetry=telemetry)
                 if cache_dir is not None else None)
        cells, pending = plan_cells(spec, seed_list, cache,
                                    instrument=instrument, on_point=on_point)
        walls: "list[float]" = []
        pool_workers = min(jobs, len(pending)) if pending else 0
        if telemetry is not None:
            telemetry.progress.cache_hits = cells_total - len(pending)
            telemetry.event("run.start", scenario=spec.name, jobs=jobs,
                            cells_total=cells_total, pending=len(pending),
                            cache_hits=cells_total - len(pending))
            telemetry.tick(len(cells), force=True)

        def _arrived(xi, si, x, seed, digest, cell, wall):
            walls.append(wall)
            cells[(xi, si)] = cell
            if telemetry is not None:
                telemetry.event("cell.compute", t=telemetry.now() - wall,
                                dur=wall, xi=xi, si=si, x=x, seed=seed)
            if cache is not None:
                cache.store(digest, cell, scenario=spec.name, x=x, seed=seed)
            if telemetry is not None:
                telemetry.tick(len(cells), active_workers=pool_workers)

        if pending and jobs == 1:
            for xi, si, x, seed, digest in pending:
                try:
                    cell, wall = compute_cell_timed(spec, x, seed,
                                                    instrument=instrument)
                except Exception as exc:
                    raise cell_failure(spec, x, seed, exc) from exc
                _arrived(xi, si, x, seed, digest, cell, wall)
        elif pending:
            with ProcessPoolExecutor(
                    max_workers=min(jobs, len(pending))) as pool:
                futures = {
                    pool.submit(compute_cell_timed, spec, x, seed,
                                instrument=instrument):
                        (xi, si, x, seed, digest)
                    for xi, si, x, seed, digest in pending}
                try:
                    for future in as_completed(futures):
                        xi, si, x, seed, digest = futures[future]
                        try:
                            cell, wall = future.result()
                        except Exception as exc:
                            raise cell_failure(spec, x, seed, exc) from exc
                        _arrived(xi, si, x, seed, digest, cell, wall)
                except BaseException:
                    # One cell failed (or the caller interrupted): cancel
                    # everything not yet started and drain the cells already
                    # running, so no orphaned worker outlives the sweep and
                    # the raised error is the first failure, not a pile-up.
                    for other in futures:
                        other.cancel()
                    pool.shutdown(wait=True, cancel_futures=True)
                    raise

        result = merge_cells(spec, seed_list, cells)
        if obs_session is not None:
            fold_obs(obs_session, spec, seed_list, cells)
    except BaseException:
        if telemetry is not None:
            telemetry.finalize(state="failed")
        raise
    wall = time.perf_counter() - started  # simlint: disable=SL001 (perf record of the host run, not simulated time)
    computed = [cells[(xi, si)] for xi, si, _x, _seed, _d in pending]
    stats = wall_stats(walls)
    timing = SweepTiming(
        scenario=spec.name, jobs=jobs, wall_time=wall,
        cells_total=cells_total, cells_computed=len(pending),
        cache_hits=cells_total - len(pending),
        iterations=sum(cell.iterations for cell in computed),
        engine_events=sum(cell.engine_events for cell in computed),
        x_points=len(spec.x_values), seeds=len(seed_list),
        cell_wall_p50=stats["p50"], cell_wall_p95=stats["p95"],
        cell_wall_max=stats["max"])
    if telemetry is not None:
        telemetry.metrics.counter("runtime.cells_computed_total").inc(
            len(pending))
        telemetry.metrics.counter("runtime.cache_hits_total").inc(
            cells_total - len(pending))
        telemetry.finalize(done=len(cells))
    return result, timing
