"""Non-sweep figures: the payback illustration and load-trace exemplars.

* Fig. 1 -- application progress vs time around one swap: the pause, the
  steeper post-swap slope, and the payback point where the swapping run
  catches the non-swapping baseline.
* Fig. 2 -- an example ON/OFF CPU load trace (p=0.3, q=0.08).
* Fig. 3 -- an example hyperexponential CPU load trace.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.app.iterative import ApplicationSpec
from repro.app.progress import ProgressRecorder
from repro.core.payback import iterations_to_break_even
from repro.core.policy import greedy_policy
from repro.load.base import ConstantLoadModel, LoadTrace
from repro.load.hyperexp import HyperexponentialLoadModel
from repro.load.onoff import OnOffLoadModel
from repro.load.stats import TraceStats, trace_stats
from repro.platform.cluster import make_platform
from repro.simkernel.rng import RngRegistry
from repro.strategies.nothing import NothingStrategy
from repro.strategies.swapstrat import SwapStrategy
from repro.units import GFLOPS, MB, MFLOPS


@dataclass
class PaybackIllustration:
    """Everything Fig. 1 shows, measured from an actual simulated run."""

    swapping: ProgressRecorder
    baseline: ProgressRecorder
    swap_pause: "tuple[float, float]"
    """(start, end) of the progress plateau caused by the swap."""
    analytic_payback_iterations: float
    """Payback distance predicted by the Section 5 algebra."""
    empirical_payback_time: float
    """Simulated time at which the swapping run catches the baseline."""
    old_iteration_time: float
    new_iteration_time: float
    swap_cost: float


def fig1_payback(iterations: int = 20,
                 state_bytes: float = 60 * MB) -> PaybackIllustration:
    """Reproduce Fig. 1 from an actual pair of simulated runs.

    One process starts on a persistently loaded host with an idle spare
    available.  The greedy policy swaps at the first opportunity, pausing
    the application for the state transfer; the NOTHING baseline stays
    put.  The returned object carries both progress curves, the paper's
    analytic payback distance, and the empirically observed catch-up
    point.
    """

    def build():
        platform = make_platform(2, ConstantLoadModel(0), seed=0,
                                 speed_range=(100 * MFLOPS,
                                              100 * MFLOPS + 1e-6))
        # Host 0: loaded forever (the process starts there because host 1
        # looks *worse* at startup and recovers immediately after).
        platform.hosts[0].trace = LoadTrace([0.0, 1e12], [1],
                                            beyond_horizon="hold")
        platform.hosts[1].trace = LoadTrace([0.0, 0.5, 1e12], [3, 0],
                                            beyond_horizon="hold")
        return platform

    app = ApplicationSpec(n_processes=1, iterations=iterations,
                          flops_per_iteration=1 * GFLOPS,  # 10 s unloaded
                          state_bytes=state_bytes, name="fig1")

    swap_run = SwapStrategy(greedy_policy()).run(build(), app)
    base_run = NothingStrategy().run(build(), app)

    pauses = swap_run.progress.pauses()
    if not pauses:
        raise RuntimeError("fig1 scenario produced no swap")
    pause_start, pause_end, _kind = pauses[0]

    speed = 100 * MFLOPS
    old_iter = app.chunk_flops / (speed / 2.0)   # loaded: availability 1/2
    new_iter = app.chunk_flops / speed
    swap_cost = build().link.transfer_time(state_bytes)

    return PaybackIllustration(
        swapping=swap_run.progress,
        baseline=base_run.progress,
        swap_pause=(pause_start, pause_end),
        analytic_payback_iterations=iterations_to_break_even(
            swap_cost, old_iter, new_iter),
        empirical_payback_time=swap_run.progress.payback_point(
            base_run.progress),
        old_iteration_time=old_iter,
        new_iteration_time=new_iter,
        swap_cost=swap_cost,
    )


@dataclass
class TraceExemplar:
    """A load trace plus its summary statistics (Figs. 2 and 3)."""

    trace: LoadTrace
    stats: TraceStats
    window: float
    description: str


def fig2_onoff_trace(seed: int = 0, window: float = 500.0) -> TraceExemplar:
    """The paper's Fig. 2: an ON/OFF source with p=0.3, q=0.08."""
    model = OnOffLoadModel(p=0.3, q=0.08, step=10.0)
    trace = model.build(RngRegistry(seed).stream("fig2"), window)
    return TraceExemplar(trace=trace, stats=trace_stats(trace, 0.0, window),
                         window=window, description=model.describe())


def fig3_hyperexp_trace(seed: int = 0,
                        window: float = 500.0) -> TraceExemplar:
    """The paper's Fig. 3: overlapping hyperexponential-lifetime jobs."""
    model = HyperexponentialLoadModel(mean_lifetime=60.0, utilization=1.2,
                                      branch_prob=0.3)
    trace = model.build(RngRegistry(seed).stream("fig3"), window)
    return TraceExemplar(trace=trace, stats=trace_stats(trace, 0.0, window),
                         window=window, description=model.describe())


def ascii_load_strip(trace: LoadTrace, t0: float, t1: float,
                     width: int = 72) -> str:
    """One-line-per-level ASCII rendering of a load trace."""
    samples = [trace.value_at(t0 + (t1 - t0) * i / (width - 1))
               for i in range(width)]
    top = max(max(samples), 1)
    lines = []
    for level in range(top, 0, -1):
        row = "".join("#" if s >= level else " " for s in samples)
        lines.append(f"{level:3d} |{row}")
    lines.append("    +" + "-" * width)
    lines.append(f"     t={t0:g} .. {t1:g}s  (competing processes over time)")
    return "\n".join(lines)


def ascii_progress(illustration: PaybackIllustration,
                   width: int = 72) -> str:
    """Fig. 1 as ASCII: both progress curves and the payback point."""
    swap_times, swap_iters = illustration.swapping.curve()
    base_times, base_iters = illustration.baseline.curve()
    t_max = max(swap_times[-1], base_times[-1])
    k_max = max(swap_iters[-1], base_iters[-1])
    height = 14

    def curve_row(times, iters, t):
        done = 0
        for tt, kk in zip(times, iters):
            if tt <= t:
                done = kk
        return done

    lines = ["progress (iterations completed) vs time; s=swap run, "
             "b=baseline, X=both"]
    for level in range(height, 0, -1):
        threshold = k_max * level / height
        row = []
        for c in range(width):
            t = t_max * c / (width - 1)
            s = curve_row(swap_times, swap_iters, t) >= threshold
            b = curve_row(base_times, base_iters, t) >= threshold
            row.append("X" if s and b else ("s" if s else ("b" if b else " ")))
        lines.append(f"{threshold:6.1f} |{''.join(row)}")
    lines.append("       +" + "-" * width)
    lines.append(f"        0 .. {t_max:.0f}s   swap pause "
                 f"{illustration.swap_pause[0]:.0f}-"
                 f"{illustration.swap_pause[1]:.0f}s, payback at "
                 f"{illustration.empirical_payback_time:.0f}s")
    return "\n".join(lines)
