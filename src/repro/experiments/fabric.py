"""Distributed sweep fabric: one coordinator, N workers, typed messages.

The :mod:`~repro.experiments.executor` fans cells over a single
machine's ``ProcessPoolExecutor``; this module is the scale-out story
(ROADMAP item 1, in the style of panda-yoda's Yoda/Droid split): a
**coordinator** streams ``(x, seed)`` cells through a work queue with
batched *leases*, **workers** pull cells and push results, and every
conversation is a typed, versioned :class:`Envelope` carried by a
pluggable transport:

* ``thread``   -- in-process queues; workers are daemon threads.  Cell
  computation is serialized by a lock (the simulation uses per-process
  ambient state -- the obs session, the kernel event tally -- that
  threads would trample), so this transport exists to exercise the full
  message protocol deterministically in tests, not for speedup.
* ``process``  -- one ``multiprocessing.Process`` per worker over a
  duplex ``Pipe``.  The real same-machine backend.
* ``socket``   -- workers connect to the coordinator over a Unix-domain
  socket carrying length-prefixed pickled envelopes.  The worker side
  only needs the address, so the same protocol extends to remote
  launchers.

Protocol (see docs/FABRIC.md for the full schema):

* worker -> coordinator: ``REQUEST_WORK``, ``CELL_RESULT``, ``HEARTBEAT``
* coordinator -> worker: ``ASSIGN_CELLS`` (a lease), ``DRAIN`` (idle,
  ask again), ``SHUTDOWN`` (exit now)

Every message from a worker refreshes its liveness; a worker whose
process died, or that has been silent longer than
:attr:`FabricConfig.lease_timeout`, has its leased cells *requeued* and
(budget permitting) a replacement worker launched.  Results are keyed by
grid coordinates and merged by the executor's
:func:`~repro.experiments.executor.merge_cells`, so a fabric run is
**byte-identical** to the ``jobs=1`` serial reference no matter how
cells were distributed, re-leased, or recomputed (duplicate results of a
deterministic cell are equal; the first one wins).  Computed cells are
written to the content-addressed cell cache *as they arrive*, so a run
that loses its coordinator resumes from the cache.

Worker-loss testing reuses the :mod:`repro.faults` vocabulary at the
fabric layer: a :class:`WorkerChaos` revokes one worker after it has
computed a configured number of cells -- by crashing it, hard-killing
the process (``SIGKILL``), or hanging it (alive but silent, the
heartbeat-expiry path).
"""

from __future__ import annotations

import os
import pickle
import queue
import select
import signal
import socket
import struct
import tempfile
import threading
import time
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Callable, Sequence

from repro import obs
from repro.errors import FabricError
from repro.experiments.executor import (CellCache, CellResult, SweepTiming,
                                        cell_failure, compute_cell, fold_obs,
                                        merge_cells, plan_cells)
from repro.experiments.runner import SweepResult
from repro.experiments.scenarios import ExperimentSpec
from repro.obs.runtime import (HEARTBEAT_BUCKETS, RunTelemetry,
                               RuntimeRecorder, wall_stats)

#: Version stamped into every envelope; receivers reject mismatches
#: instead of guessing, so mixed-version fleets fail loudly.
PROTOCOL_VERSION = 1

# -- message kinds ----------------------------------------------------------

REQUEST_WORK = "REQUEST_WORK"
ASSIGN_CELLS = "ASSIGN_CELLS"
CELL_RESULT = "CELL_RESULT"
HEARTBEAT = "HEARTBEAT"
DRAIN = "DRAIN"
SHUTDOWN = "SHUTDOWN"

MESSAGE_KINDS = frozenset({REQUEST_WORK, ASSIGN_CELLS, CELL_RESULT,
                           HEARTBEAT, DRAIN, SHUTDOWN})

#: Sender id of the coordinator end of every channel.
COORDINATOR = "coordinator"


@dataclass(frozen=True)
class Envelope:
    """One typed, versioned fabric message."""

    kind: str
    sender: str
    payload: dict = field(default_factory=dict)
    version: int = PROTOCOL_VERSION

    def __post_init__(self) -> None:
        if self.kind not in MESSAGE_KINDS:
            raise FabricError(f"unknown message kind {self.kind!r}")

    def to_wire(self) -> dict:
        """Plain-dict spelling (what the socket transport pickles)."""
        return {"kind": self.kind, "sender": self.sender,
                "payload": self.payload, "version": self.version}

    @classmethod
    def from_wire(cls, data: dict) -> "Envelope":
        try:
            env = cls(kind=data["kind"], sender=data["sender"],
                      payload=dict(data["payload"]),
                      version=int(data["version"]))
        except FabricError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise FabricError(f"malformed envelope {data!r}: {exc}") from exc
        if env.version != PROTOCOL_VERSION:
            raise FabricError(
                f"protocol version mismatch: got {env.version}, "
                f"speak {PROTOCOL_VERSION}")
        return env


# -- fault injection --------------------------------------------------------

#: Chaos modes: how the targeted worker is lost.
CHAOS_MODES = ("crash", "kill", "hang")


@dataclass(frozen=True)
class WorkerChaos:
    """Deterministically revoke one worker after ``after_cells`` cells.

    The fabric-layer analogue of a :mod:`repro.faults` host revocation:
    ``crash`` exits the worker loop abruptly (no message, channel
    closed), ``kill`` delivers ``SIGKILL`` to the worker process (process
    transports only -- a genuinely hard death), and ``hang`` leaves the
    worker alive but silent, which only the coordinator's lease-expiry
    clock can detect.
    """

    mode: str
    worker: str
    """Worker id, e.g. ``"w0"`` (replacements get fresh ids, so an
    injected fault fires at most once)."""
    after_cells: int

    def __post_init__(self) -> None:
        if self.mode not in CHAOS_MODES:
            raise FabricError(
                f"unknown chaos mode {self.mode!r}; pick from {CHAOS_MODES}")
        if self.after_cells < 0:
            raise FabricError("after_cells must be >= 0")

    @classmethod
    def parse(cls, text: str) -> "WorkerChaos":
        """Parse the CLI spelling ``mode:worker_index:after_cells``."""
        parts = text.split(":")
        if len(parts) != 3:
            raise FabricError(
                f"chaos spec {text!r} is not mode:worker:after_cells")
        mode, worker, after = parts
        try:
            return cls(mode=mode, worker=f"w{int(worker)}",
                       after_cells=int(after))
        except ValueError as exc:
            raise FabricError(f"bad chaos spec {text!r}: {exc}") from exc


@dataclass(frozen=True)
class FabricConfig:
    """Everything that shapes one fabric run (but never its result)."""

    workers: int = 2
    transport: str = "process"
    lease_size: int = 4
    """Cells per ``ASSIGN_CELLS`` batch."""
    lease_timeout: float = 30.0
    """Seconds of worker silence before its lease is revoked.  Must
    exceed the worst single-cell compute time (workers heartbeat between
    cells, not during one)."""
    poll_interval: float = 0.005
    """Coordinator sleep when no messages are waiting (seconds)."""
    drain_pause: float = 0.02
    """Worker pause after a ``DRAIN`` before re-requesting work."""
    max_worker_restarts: int = 4
    """Replacement workers the coordinator may launch before it starts
    shrinking the fleet instead."""
    chaos: "WorkerChaos | None" = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise FabricError(f"workers must be >= 1, got {self.workers}")
        if self.lease_size < 1:
            raise FabricError(f"lease_size must be >= 1, got {self.lease_size}")
        if self.transport not in ("thread", "process", "socket"):
            raise FabricError(
                f"unknown transport {self.transport!r}; pick from "
                f"('thread', 'process', 'socket')")
        if (self.chaos is not None and self.chaos.mode == "kill"
                and self.transport == "thread"):
            raise FabricError(
                "chaos mode 'kill' needs a process transport (SIGKILL "
                "from a thread worker would take down the coordinator)")


@dataclass
class FabricStats:
    """Operational counters of one fabric run (wall-clock flavored --
    *not* part of the deterministic result)."""

    transport: str = ""
    workers: int = 0
    leases: int = 0
    requeued_cells: int = 0
    revoked_leases: int = 0
    heartbeats: int = 0
    work_requests: int = 0
    workers_started: int = 0
    workers_lost: int = 0
    duplicate_results: int = 0
    worker_lifetimes: "dict[str, float]" = field(default_factory=dict)
    """Seconds between launch and loss/shutdown, per worker id."""

    def to_dict(self) -> dict:
        return {
            "transport": self.transport,
            "workers": self.workers,
            "leases": self.leases,
            "requeued_cells": self.requeued_cells,
            "revoked_leases": self.revoked_leases,
            "heartbeats": self.heartbeats,
            "work_requests": self.work_requests,
            "workers_started": self.workers_started,
            "workers_lost": self.workers_lost,
            "duplicate_results": self.duplicate_results,
            "worker_lifetimes": {wid: self.worker_lifetimes[wid]
                                 for wid in sorted(self.worker_lifetimes)},
        }


# -- channels ---------------------------------------------------------------
#
# A channel is one duplex coordinator<->worker conversation.  The
# coordinator side needs non-blocking poll/recv (it multiplexes many
# workers); the worker side needs a blocking recv with timeout.


class ChannelClosed(FabricError):
    """The peer hung up (worker death, coordinator death)."""


class _QueuePair:
    """Thread-transport channel half: two in-process queues."""

    def __init__(self, inbox: "queue.SimpleQueue", outbox: "queue.SimpleQueue",
                 ) -> None:
        self._inbox = inbox
        self._outbox = outbox

    def send(self, env: Envelope) -> None:
        self._outbox.put(env)

    def poll(self) -> bool:
        return not self._inbox.empty()

    def recv(self, timeout: "float | None" = None) -> "Envelope | None":
        try:
            return self._inbox.get(timeout=timeout)
        except queue.Empty:
            return None

    def close(self) -> None:  # queues are garbage-collected with the run
        pass


class _PipeChannel:
    """Process-transport channel half: one end of ``multiprocessing.Pipe``."""

    def __init__(self, conn) -> None:
        self._conn = conn

    def send(self, env: Envelope) -> None:
        try:
            self._conn.send(env)
        except (OSError, ValueError, BrokenPipeError) as exc:
            raise ChannelClosed(f"pipe send failed: {exc}") from exc

    def poll(self) -> bool:
        try:
            return self._conn.poll()
        except (OSError, ValueError):
            raise ChannelClosed("pipe poll failed")

    def recv(self, timeout: "float | None" = None) -> "Envelope | None":
        try:
            if not self._conn.poll(timeout):
                return None
            return self._conn.recv()
        except (EOFError, OSError, ValueError) as exc:
            raise ChannelClosed(f"pipe closed: {exc}") from exc

    def close(self) -> None:
        try:
            self._conn.close()
        except OSError:
            pass


class _SocketChannel:
    """Socket-transport channel half: length-prefixed pickled envelopes.

    Frames are ``struct('>I')`` length + ``pickle(envelope.to_wire())``;
    :meth:`recv` revalidates kind and version through
    :meth:`Envelope.from_wire`, so a wire peer cannot smuggle an untyped
    message past the protocol.
    """

    _HEADER = struct.Struct(">I")

    def __init__(self, sock: "socket.socket") -> None:
        self._sock = sock
        self._buffer = bytearray()
        self._pending: "Envelope | None" = None

    def send(self, env: Envelope) -> None:
        frame = pickle.dumps(env.to_wire(), protocol=pickle.HIGHEST_PROTOCOL)
        try:
            self._sock.sendall(self._HEADER.pack(len(frame)) + frame)
        except OSError as exc:
            raise ChannelClosed(f"socket send failed: {exc}") from exc

    def _pump(self, timeout: float) -> None:
        """Pull whatever bytes are ready into the frame buffer."""
        try:
            ready, _, _ = select.select([self._sock], [], [], timeout)
            if not ready:
                return
            chunk = self._sock.recv(1 << 16)
        except OSError as exc:
            raise ChannelClosed(f"socket recv failed: {exc}") from exc
        if not chunk:
            raise ChannelClosed("socket peer hung up")
        self._buffer.extend(chunk)

    def _take_frame(self) -> "Envelope | None":
        header = self._HEADER.size
        if len(self._buffer) < header:
            return None
        (length,) = self._HEADER.unpack(self._buffer[:header])
        if len(self._buffer) < header + length:
            return None
        frame = bytes(self._buffer[header:header + length])
        del self._buffer[:header + length]
        return Envelope.from_wire(pickle.loads(frame))

    def poll(self) -> bool:
        env = self._take_frame()
        if env is not None:
            self._pending = env
            return True
        self._pump(0.0)
        env = self._take_frame()
        if env is not None:
            self._pending = env
            return True
        return False

    def recv(self, timeout: "float | None" = None) -> "Envelope | None":
        pending = getattr(self, "_pending", None)
        if pending is not None:
            self._pending = None
            return pending
        env = self._take_frame()
        if env is not None:
            return env
        deadline = (None if timeout is None
                    else time.monotonic() + timeout)  # simlint: disable=SL001 (transport timeout, host time)
        while True:
            remaining = (0.05 if deadline is None
                         else deadline - time.monotonic())  # simlint: disable=SL001 (transport timeout, host time)
            if deadline is not None and remaining <= 0:
                return None
            self._pump(max(0.0, remaining))
            env = self._take_frame()
            if env is not None:
                return env

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass


# -- the worker -------------------------------------------------------------


@dataclass(frozen=True)
class WorkerConfig:
    """Per-worker knobs shipped to the worker side of the channel."""

    worker_id: str
    drain_pause: float = 0.02
    serialize_compute: bool = False
    """Thread transport only: hold the module compute lock around
    :func:`compute_cell` (ambient obs/session state is per-process)."""
    chaos: "WorkerChaos | None" = None
    runtime_dir: "str | None" = None
    """Run directory of the runtime telemetry plane
    (:mod:`repro.obs.runtime`), or None for no telemetry.  The worker
    appends wall-clock spans to its own ``spans-worker-<id>.jsonl``."""


#: Guards compute_cell for thread-transport workers (see module doc).
_COMPUTE_LOCK = threading.Lock()


class _ChaosTriggered(Exception):
    """Internal: the injected fault fired; unwind the worker loop."""


def _apply_chaos(config: WorkerConfig, cells_done: int,
                 recorder: "RuntimeRecorder | None" = None) -> None:
    chaos = config.chaos
    if chaos is None or chaos.worker != config.worker_id:
        return
    if cells_done < chaos.after_cells:
        return
    if recorder is not None:
        # The last thing a chaos-stricken worker says -- to the telemetry
        # plane, never to the coordinator (that's the point of chaos).
        recorder.event("chaos.injected", mode=chaos.mode,
                       after_cells=chaos.after_cells)
        recorder.close()
    if chaos.mode == "kill":
        os.kill(os.getpid(), signal.SIGKILL)  # never returns
    if chaos.mode == "hang":
        while True:  # alive but silent: only lease expiry catches this
            time.sleep(0.2)  # pragma: no cover - killed by coordinator
    raise _ChaosTriggered  # "crash": vanish without a goodbye message


def worker_main(channel, spec: ExperimentSpec, instrument: bool,
                config: WorkerConfig) -> None:
    """The worker loop every transport runs (thread, process, or remote).

    Pull-based: request work, compute each leased cell, push a
    ``CELL_RESULT`` per cell (success or failure -- a failing cell is
    reported with its coordinates, not swallowed), heartbeat between
    cells, and repeat until ``SHUTDOWN``.

    Every result carries ``wall_s`` -- the wall-clock seconds the cell
    took *in this worker* -- feeding the coordinator's per-cell wall
    percentiles.  With :attr:`WorkerConfig.runtime_dir` set the worker
    additionally appends ``cell.compute`` / ``cell.serialize`` spans and
    lifecycle events to its own runtime span file; none of this is ever
    visible to the deterministic sim-time plane.
    """
    me = config.worker_id
    recorder: "RuntimeRecorder | None" = None
    if config.runtime_dir is not None:
        try:
            recorder = RuntimeRecorder.for_worker(config.runtime_dir, me)
        except OSError:  # telemetry must never take a worker down
            recorder = None

    def send(kind: str, **payload) -> None:
        channel.send(Envelope(kind=kind, sender=me, payload=payload))

    def log(kind: str, **fields) -> None:
        if recorder is not None:
            recorder.event(kind, **fields)

    cells_done = 0
    try:
        log("worker.start")
        send(REQUEST_WORK)
        while True:
            env = channel.recv(timeout=1.0)
            if env is None:
                send(HEARTBEAT, cells_done=cells_done)
                continue
            if env.kind == SHUTDOWN:
                log("worker.shutdown", cells_done=cells_done)
                return
            if env.kind == DRAIN:
                time.sleep(config.drain_pause)
                send(REQUEST_WORK)
                continue
            if env.kind != ASSIGN_CELLS:
                raise FabricError(
                    f"worker {me} got unexpected {env.kind}")
            lease_id = env.payload["lease"]
            log("lease.recv", lease=lease_id,
                cells=len(env.payload["cells"]))
            for cell in env.payload["cells"]:
                _apply_chaos(config, cells_done, recorder)
                x, seed = cell["x"], cell["seed"]
                compute_started = time.monotonic()  # simlint: disable=SL001 (runtime-plane wall time, never simulated)
                try:
                    if config.serialize_compute:
                        with _COMPUTE_LOCK:
                            result = compute_cell(spec, x, seed,
                                                  instrument=instrument)
                    else:
                        result = compute_cell(spec, x, seed,
                                              instrument=instrument)
                except Exception as exc:
                    send(CELL_RESULT, lease=lease_id, xi=cell["xi"],
                         si=cell["si"], x=x, seed=seed, ok=False,
                         error=f"{type(exc).__name__}: {exc}")
                    log("cell.failed", lease=lease_id, xi=cell["xi"],
                        si=cell["si"], error=type(exc).__name__)
                    continue
                wall = time.monotonic() - compute_started  # simlint: disable=SL001 (runtime-plane wall time, never simulated)
                cells_done += 1
                log("cell.compute", t=compute_started, dur=wall,
                    xi=cell["xi"], si=cell["si"], x=x, seed=seed)
                serialize_started = time.monotonic()  # simlint: disable=SL001 (runtime-plane wall time, never simulated)
                send(CELL_RESULT, lease=lease_id, xi=cell["xi"],
                     si=cell["si"], x=x, seed=seed, ok=True,
                     cell=result.to_payload(), wall_s=wall)
                log("cell.serialize", t=serialize_started,
                    dur=time.monotonic() - serialize_started,  # simlint: disable=SL001 (runtime-plane wall time, never simulated)
                    xi=cell["xi"], si=cell["si"])
                send(HEARTBEAT, cells_done=cells_done)
            send(REQUEST_WORK)
    except (ChannelClosed, _ChaosTriggered):
        log("worker.channel_closed", cells_done=cells_done)
        return  # coordinator died or chaos fired: just vanish
    finally:
        if recorder is not None:
            recorder.close()
        channel.close()


def _process_worker_entry(conn, spec, instrument, config):  # pragma: no cover - child process
    worker_main(_PipeChannel(conn), spec, instrument, config)


def _socket_worker_entry(address, spec, instrument, config):  # pragma: no cover - child process
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    sock.connect(address)
    worker_main(_SocketChannel(sock), spec, instrument, config)


# -- transports -------------------------------------------------------------


@dataclass
class WorkerHandle:
    """Coordinator-side view of one launched worker."""

    worker_id: str
    channel: object
    is_alive: "Callable[[], bool]"
    kill: "Callable[[], None]"
    join: "Callable[[float], None]"
    started: float = 0.0
    """``time.monotonic()`` at launch (worker-lifetime accounting)."""


class ThreadTransport:
    """Daemon threads + in-process queues (protocol tests)."""

    name = "thread"

    def launch(self, spec, instrument, config: WorkerConfig) -> WorkerHandle:
        to_worker: "queue.SimpleQueue" = queue.SimpleQueue()
        to_coord: "queue.SimpleQueue" = queue.SimpleQueue()
        worker_channel = _QueuePair(inbox=to_worker, outbox=to_coord)
        coord_channel = _QueuePair(inbox=to_coord, outbox=to_worker)
        config = replace(config, serialize_compute=True)
        thread = threading.Thread(
            target=worker_main, args=(worker_channel, spec, instrument, config),
            name=f"fabric-{config.worker_id}", daemon=True)
        thread.start()
        return WorkerHandle(
            worker_id=config.worker_id, channel=coord_channel,
            is_alive=thread.is_alive, kill=lambda: None,
            join=lambda timeout: thread.join(timeout),
            started=time.monotonic())  # simlint: disable=SL001 (worker-lifetime accounting, host time)

    def close(self) -> None:
        pass


class ProcessTransport:
    """One ``multiprocessing.Process`` per worker over a duplex pipe."""

    name = "process"

    def launch(self, spec, instrument, config: WorkerConfig) -> WorkerHandle:
        import multiprocessing

        parent_conn, child_conn = multiprocessing.Pipe(duplex=True)
        process = multiprocessing.Process(
            target=_process_worker_entry,
            args=(child_conn, spec, instrument, config),
            name=f"fabric-{config.worker_id}", daemon=True)
        process.start()
        child_conn.close()  # the parent keeps only its own end

        def kill() -> None:
            if process.is_alive():
                process.kill()

        return WorkerHandle(
            worker_id=config.worker_id, channel=_PipeChannel(parent_conn),
            is_alive=process.is_alive, kill=kill,
            join=lambda timeout: process.join(timeout),
            started=time.monotonic())  # simlint: disable=SL001 (worker-lifetime accounting, host time)

    def close(self) -> None:
        pass


class SocketTransport:
    """Workers connect back over a Unix-domain socket.

    The launcher here spawns local processes for the test/benchmark
    story, but the worker side (:func:`_socket_worker_entry`) needs only
    the address -- the same protocol serves remote launchers.
    """

    name = "socket"

    def __init__(self) -> None:
        self._dir = tempfile.mkdtemp(prefix="repro-fabric-")
        self.address = os.path.join(self._dir, "fabric.sock")
        self._listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._listener.bind(self.address)
        self._listener.listen()

    def launch(self, spec, instrument, config: WorkerConfig) -> WorkerHandle:
        import multiprocessing

        process = multiprocessing.Process(
            target=_socket_worker_entry,
            args=(self.address, spec, instrument, config),
            name=f"fabric-{config.worker_id}", daemon=True)
        process.start()
        self._listener.settimeout(10.0)
        try:
            conn, _ = self._listener.accept()
        except TimeoutError as exc:
            process.kill()
            raise FabricError(
                f"worker {config.worker_id} never connected") from exc

        def kill() -> None:
            if process.is_alive():
                process.kill()

        return WorkerHandle(
            worker_id=config.worker_id, channel=_SocketChannel(conn),
            is_alive=process.is_alive, kill=kill,
            join=lambda timeout: process.join(timeout),
            started=time.monotonic())  # simlint: disable=SL001 (worker-lifetime accounting, host time)

    def close(self) -> None:
        try:
            self._listener.close()
            os.unlink(self.address)
            os.rmdir(self._dir)
        except OSError:
            pass


def make_transport(name: str):
    if name == "thread":
        return ThreadTransport()
    if name == "process":
        return ProcessTransport()
    if name == "socket":
        return SocketTransport()
    raise FabricError(f"unknown transport {name!r}")


# -- the coordinator --------------------------------------------------------


@dataclass
class _Lease:
    lease_id: int
    worker_id: str
    outstanding: "set[tuple[int, int]]"


@dataclass
class _Worker:
    handle: WorkerHandle
    last_seen: float
    lease: "_Lease | None" = None


class Coordinator:
    """Owns the work queue, the leases, and the liveness clock."""

    def __init__(self, spec: ExperimentSpec, seed_list: "list[int]", *,
                 config: FabricConfig, cache: "CellCache | None",
                 instrument: bool,
                 on_cell: "Callable[[int, int], None] | None" = None,
                 telemetry: "RunTelemetry | None" = None,
                 clock: "Callable[[], float]" = time.monotonic) -> None:
        self.spec = spec
        self.seed_list = seed_list
        self.config = config
        self.cache = cache
        self.instrument = instrument
        self.on_cell = on_cell
        self.telemetry = telemetry
        #: The liveness/lease clock.  ``time.monotonic`` in production;
        #: boundary-timing tests inject a fake monotonic clock here.
        self._clock = clock
        self.stats = FabricStats(transport=config.transport,
                                 workers=config.workers)
        self.cells: "dict[tuple[int, int], CellResult]" = {}
        #: Wall seconds per computed cell, as reported by the worker
        #: that computed it (first result wins, like the cell itself).
        self.cell_walls: "list[float]" = []
        #: Grid-order queue of cells still to assign.
        self.queue: "deque[dict]" = deque()
        #: Cell coordinates -> full cell record (for requeuing).
        self._cell_specs: "dict[tuple[int, int], dict]" = {}
        self._workers: "dict[str, _Worker]" = {}
        self._next_lease = 0
        self._next_worker = 0
        self._restarts = 0
        self._transport = None
        self._failure: "ExperimentError | None" = None

    # -- worker lifecycle ---------------------------------------------------

    def _launch_worker(self) -> None:
        worker_id = f"w{self._next_worker}"
        self._next_worker += 1
        runtime_dir = None
        if self.telemetry is not None and self.telemetry.run_dir is not None:
            runtime_dir = str(self.telemetry.run_dir)
        config = WorkerConfig(worker_id=worker_id,
                              drain_pause=self.config.drain_pause,
                              chaos=self.config.chaos,
                              runtime_dir=runtime_dir)
        with self._tel_span("worker.launch", worker_id=worker_id):
            handle = self._transport.launch(self.spec, self.instrument,
                                            config)
        self._workers[worker_id] = _Worker(handle=handle,
                                           last_seen=handle.started)
        self.stats.workers_started += 1
        self._tel_count("runtime.workers_started_total")

    def _record_lifetime(self, worker_id: str, handle: WorkerHandle,
                         now: float) -> None:
        """Record the worker's *final* lifetime, exactly once.

        A plain assignment, deliberately: the old ``setdefault`` on the
        shutdown path could freeze a stale lifetime recorded when the
        same worker id was revoked earlier, so whichever of loss or
        shutdown happens last for an id is the one that counts.  Loss
        pops the worker from the registry, so each path runs at most
        once per id and the recorded value is always the final one.
        """
        self.stats.worker_lifetimes[worker_id] = now - handle.started

    def _lose_worker(self, worker_id: str, now: float,
                     reason: str = "lost") -> None:
        """Revoke the worker's lease, requeue its cells, drop the worker."""
        worker = self._workers.pop(worker_id)
        self.stats.workers_lost += 1
        self._record_lifetime(worker_id, worker.handle, now)
        self._tel_event("worker.exit", worker_id=worker_id, reason=reason,
                        lifetime_s=now - worker.handle.started)
        self._tel_count("runtime.workers_lost_total")
        if worker.lease is not None:
            self.stats.revoked_leases += 1
            requeued = 0
            for key in sorted(worker.lease.outstanding):
                if key not in self.cells:
                    self.queue.append(self._cell_specs[key])
                    self.stats.requeued_cells += 1
                    requeued += 1
            self._tel_event("lease.revoked", worker_id=worker_id,
                            lease=worker.lease.lease_id, requeued=requeued)
        worker.handle.kill()
        worker.handle.channel.close()
        incomplete = len(self.cells) < len(self._cell_specs)
        if incomplete and self._failure is None:
            if self._restarts < self.config.max_worker_restarts:
                self._restarts += 1
                self._launch_worker()
            elif not self._workers:
                raise FabricError(
                    f"{self.spec.name}: every fabric worker died and the "
                    f"restart budget ({self.config.max_worker_restarts}) "
                    f"is spent with "
                    f"{len(self._cell_specs) - len(self.cells)} cells "
                    f"incomplete")

    # -- runtime telemetry (no-ops when the plane is off) -------------------

    def _tel_event(self, kind: str, **fields) -> None:
        if self.telemetry is not None:
            self.telemetry.event(kind, **fields)

    def _tel_span(self, kind: str, **fields):
        if self.telemetry is not None:
            return self.telemetry.span(kind, **fields)
        from repro.obs.runtime import _NullSpan
        return _NullSpan()

    def _tel_count(self, name: str, amount: float = 1.0) -> None:
        if self.telemetry is not None:
            self.telemetry.metrics.counter(name).inc(amount)

    # -- message handling ---------------------------------------------------

    def _assign(self, worker: _Worker) -> None:
        batch = []
        while self.queue and len(batch) < self.config.lease_size:
            cell = self.queue.popleft()
            if (cell["xi"], cell["si"]) in self.cells:
                continue  # completed by a revoked-but-live worker meanwhile
            batch.append(cell)
        if not batch:
            worker.handle.channel.send(
                Envelope(kind=DRAIN, sender=COORDINATOR))
            return
        lease = _Lease(lease_id=self._next_lease,
                       worker_id=worker.handle.worker_id,
                       outstanding={(c["xi"], c["si"]) for c in batch})
        self._next_lease += 1
        worker.lease = lease
        self.stats.leases += 1
        self._tel_event("lease.assign", lease=lease.lease_id,
                        worker_id=worker.handle.worker_id,
                        cells=len(batch))
        self._tel_count("runtime.leases_total")
        worker.handle.channel.send(Envelope(
            kind=ASSIGN_CELLS, sender=COORDINATOR,
            payload={"lease": lease.lease_id, "cells": batch}))

    def _on_result(self, worker: _Worker, env: Envelope) -> None:
        payload = env.payload
        key = (int(payload["xi"]), int(payload["si"]))
        if not payload.get("ok", False):
            # A failing cell is a sweep failure, with full coordinates --
            # record it, then drain the fleet before raising.
            exc = FabricError(str(payload.get("error", "unknown error")))
            self._failure = cell_failure(self.spec, payload["x"],
                                         payload["seed"], exc)
            return
        if worker.lease is not None:
            worker.lease.outstanding.discard(key)
            if not worker.lease.outstanding:
                worker.lease = None
        if key in self.cells:
            self.stats.duplicate_results += 1
            self._tel_event("cell.duplicate", xi=key[0], si=key[1],
                            worker_id=env.sender)
            return  # deterministic recompute of a re-leased cell
        cell = CellResult.from_payload(payload["cell"])
        self.cells[key] = cell
        wall = payload.get("wall_s")
        if isinstance(wall, (int, float)):
            self.cell_walls.append(float(wall))
        self._tel_event("cell.result", xi=key[0], si=key[1],
                        worker_id=env.sender, wall_s=wall)
        if self.cache is not None:
            digest = self._cell_specs[key]["digest"]
            self.cache.store(digest, cell, scenario=self.spec.name,
                             x=payload["x"], seed=payload["seed"])
        if self.on_cell is not None:
            self.on_cell(*key)

    def _handle(self, worker: _Worker, env: Envelope, now: float) -> None:
        silent_for = now - worker.last_seen
        worker.last_seen = now
        if env.kind == REQUEST_WORK:
            self.stats.work_requests += 1
            if self._failure is None:
                self._assign(worker)
            else:
                worker.handle.channel.send(
                    Envelope(kind=DRAIN, sender=COORDINATOR))
        elif env.kind == HEARTBEAT:
            self.stats.heartbeats += 1
            # Heartbeat latency: how long this worker had been silent
            # when the beat landed -- the lease-expiry clock's margin.
            self._tel_event("heartbeat", worker_id=env.sender,
                            latency_s=silent_for,
                            cells_done=env.payload.get("cells_done"))
            if self.telemetry is not None:
                self.telemetry.metrics.histogram(
                    "runtime.heartbeat_latency_seconds",
                    HEARTBEAT_BUCKETS).observe(silent_for)
        elif env.kind == CELL_RESULT:
            self._on_result(worker, env)
        else:
            raise FabricError(
                f"coordinator got unexpected {env.kind} from "
                f"{env.sender}")

    # -- main loop ----------------------------------------------------------

    def run(self) -> "dict[tuple[int, int], CellResult]":
        cells, pending = plan_cells(self.spec, self.seed_list, self.cache,
                                    instrument=self.instrument)
        self.cells.update(cells)
        for xi, si, x, seed, digest in pending:
            record = {"xi": xi, "si": si, "x": x, "seed": seed,
                      "digest": digest}
            self.queue.append(record)
            self._cell_specs[(xi, si)] = record
        total = len(self.spec.x_values) * len(self.seed_list)
        if self.telemetry is not None:
            self.telemetry.progress.cache_hits = len(self.cells)
            self._tel_event("run.start", total=total,
                            pending=len(pending), cache_hits=len(self.cells))
            self.telemetry.tick(len(self.cells), active_workers=0,
                                stragglers=0, force=True)
        if len(self.cells) >= total:
            return self.cells  # fully warm cache: no fleet needed

        self._transport = make_transport(self.config.transport)
        try:
            for _ in range(self.config.workers):
                self._launch_worker()
            while len(self.cells) < total and self._failure is None:
                if not self._drive():
                    time.sleep(self.config.poll_interval)
            if self._failure is not None:
                raise self._failure
            return self.cells
        finally:
            self._shutdown_fleet()
            self._transport.close()

    def _stragglers(self, now: float) -> int:
        """Workers silent for more than a quarter of the lease timeout --
        not yet revocable, but visibly behind the fleet's cadence."""
        cutoff = self.config.lease_timeout / 4.0
        return sum(1 for worker in self._workers.values()
                   if now - worker.last_seen > cutoff)

    def _drive(self) -> bool:
        """One poll round: pump messages, expire leases.  True if any
        message was handled (the caller sleeps otherwise)."""
        progressed = False
        now = self._clock()
        for worker_id in list(self._workers):
            worker = self._workers.get(worker_id)
            if worker is None:
                continue
            try:
                while worker.handle.channel.poll():
                    env = worker.handle.channel.recv(timeout=0.0)
                    if env is None:
                        break
                    self._handle(worker, env, now)
                    progressed = True
            except ChannelClosed:
                self._lose_worker(worker_id, now, reason="channel-closed")
                continue
            if not worker.handle.is_alive():
                self._lose_worker(worker_id, now, reason="dead")
            elif now - worker.last_seen > self.config.lease_timeout:
                self._tel_event("lease.expired", worker_id=worker_id,
                                silent_for=now - worker.last_seen,
                                timeout=self.config.lease_timeout)
                self._lose_worker(worker_id, now, reason="lease-expired")
        if self.telemetry is not None:
            self.telemetry.tick(len(self.cells),
                                active_workers=len(self._workers),
                                stragglers=self._stragglers(now))
        return progressed

    def _shutdown_fleet(self) -> None:
        now = self._clock()
        for worker_id, worker in sorted(self._workers.items()):
            try:
                worker.handle.channel.send(
                    Envelope(kind=SHUTDOWN, sender=COORDINATOR))
            except (ChannelClosed, OSError):
                pass
            self._record_lifetime(worker_id, worker.handle, now)
            self._tel_event("worker.exit", worker_id=worker_id,
                            reason="shutdown",
                            lifetime_s=now - worker.handle.started)
        for _worker_id, worker in sorted(self._workers.items()):
            worker.handle.join(2.0)
            worker.handle.kill()
            worker.handle.channel.close()
        self._workers.clear()


# -- public entry point -----------------------------------------------------


def execute_sweep_fabric(spec: ExperimentSpec,
                         seeds: "Sequence[int] | int | None" = None,
                         *,
                         workers: "int | None" = None,
                         transport: "str | None" = None,
                         config: "FabricConfig | None" = None,
                         cache_dir: "str | os.PathLike | None" = None,
                         on_point: "Callable[[float, int], None] | None" = None,
                         on_cell: "Callable[[int, int], None] | None" = None,
                         obs_session: "obs.ObsSession | None" = None,
                         runtime_dir: "str | os.PathLike | None" = None,
                         progress: bool = False,
                         progress_stream=None,
                         ) -> "tuple[SweepResult, SweepTiming, FabricStats]":
    """Run a sweep on the coordinator/worker fabric.

    Drop-in sibling of :func:`~repro.experiments.executor.execute_sweep`:
    the merged :class:`SweepResult` is **byte-identical** to the serial
    reference for any worker count, transport, injected worker loss, or
    cache state.  Returns ``(result, timing, stats)``; ``stats`` carries
    the fabric's operational counters (leases, requeues, heartbeats,
    worker lifetimes), which -- unlike the result -- legitimately vary
    run to run.

    ``on_cell(xi, si)`` fires after each newly computed cell has been
    stored (the resumability hook: everything already fired is on disk).

    ``runtime_dir`` switches on the wall-clock telemetry plane
    (:mod:`repro.obs.runtime`): coordinator and worker span files, the
    Chrome fleet timeline, periodic metric snapshots, and a Prometheus
    textfile land there.  ``progress`` prints a live ticker.  Neither
    affects the deterministic result, traces, or metrics in any way.
    """
    from repro.experiments.executor import _normalize_seeds

    if config is None:
        config = FabricConfig()
    if workers is not None:
        config = replace(config, workers=workers)
    if transport is not None:
        config = replace(config, transport=transport)
    seed_list = _normalize_seeds(spec, seeds)
    instrument = obs_session is not None
    total = len(spec.x_values) * len(seed_list)
    telemetry = RunTelemetry.create(runtime_dir, progress=progress,
                                    total_cells=total,
                                    progress_stream=progress_stream)
    cache = (CellCache(cache_dir, telemetry=telemetry)
             if cache_dir is not None else None)
    started = time.perf_counter()  # simlint: disable=SL001 (perf record of the host run, not simulated time)

    if on_point is not None:
        for x in spec.x_values:
            for seed in seed_list:
                on_point(x, seed)

    coordinator = Coordinator(spec, seed_list, config=config, cache=cache,
                              instrument=instrument, on_cell=on_cell,
                              telemetry=telemetry)
    try:
        cells = coordinator.run()
    except BaseException:
        if telemetry is not None:
            telemetry.finalize(state="failed")
        raise
    result = merge_cells(spec, seed_list, cells)
    if obs_session is not None:
        fold_obs(obs_session, spec, seed_list, cells)
        _fold_fabric_metrics(obs_session, coordinator.stats)

    wall = time.perf_counter() - started  # simlint: disable=SL001 (perf record of the host run, not simulated time)
    computed_keys = sorted(coordinator._cell_specs)
    computed = [cells[key] for key in computed_keys]
    walls = wall_stats(coordinator.cell_walls)
    timing = SweepTiming(
        scenario=spec.name, jobs=config.workers, wall_time=wall,
        cells_total=total, cells_computed=len(computed_keys),
        cache_hits=total - len(computed_keys),
        iterations=sum(cell.iterations for cell in computed),
        engine_events=sum(cell.engine_events for cell in computed),
        x_points=len(spec.x_values), seeds=len(seed_list),
        mode="fabric", cell_wall_p50=walls["p50"],
        cell_wall_p95=walls["p95"], cell_wall_max=walls["max"])
    if telemetry is not None:
        metrics = telemetry.metrics
        metrics.counter("runtime.cells_computed_total").inc(
            len(computed_keys))
        metrics.counter("runtime.cache_hits_total").inc(
            total - len(computed_keys))
        metrics.counter("runtime.cells_requeued_total").inc(
            coordinator.stats.requeued_cells)
        metrics.counter("runtime.duplicate_results_total").inc(
            coordinator.stats.duplicate_results)
        metrics.counter("runtime.heartbeats_total").inc(
            coordinator.stats.heartbeats)
        telemetry.finalize(done=len(cells))
    return result, timing, coordinator.stats


#: Worker-lifetime histogram buckets (seconds of host wall time).
LIFETIME_BUCKETS = (0.1, 0.5, 1.0, 5.0, 15.0, 60.0, 300.0)


def _fold_fabric_metrics(session: "obs.ObsSession", stats: FabricStats,
                         ) -> None:
    """Record the fabric's operational counters into the obs registry.

    These are host-side, wall-clock-flavored metrics (``fabric.*``) --
    deliberately separate from the deterministic simulation metrics, and
    excluded from any byte-identity comparison.
    """
    metrics = session.metrics
    metrics.counter("fabric.leases_total").inc(stats.leases)
    metrics.counter("fabric.cells_requeued_total").inc(stats.requeued_cells)
    metrics.counter("fabric.leases_revoked_total").inc(stats.revoked_leases)
    metrics.counter("fabric.heartbeats_total").inc(stats.heartbeats)
    metrics.counter("fabric.work_requests_total").inc(stats.work_requests)
    metrics.counter("fabric.workers_started_total").inc(stats.workers_started)
    metrics.counter("fabric.workers_lost_total").inc(stats.workers_lost)
    metrics.counter("fabric.duplicate_results_total").inc(
        stats.duplicate_results)
    for worker_id in sorted(stats.worker_lifetimes):
        metrics.histogram("fabric.worker_lifetime_seconds",
                          LIFETIME_BUCKETS).observe(
            stats.worker_lifetimes[worker_id])
