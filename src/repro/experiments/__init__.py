"""Experiment harness: regenerates every figure of the paper.

* :mod:`repro.experiments.scenarios` -- parameter sets for Figs. 1-9 and
  the ablation sweeps, including the documented mapping from the paper's
  "environment dynamism" axis to ON/OFF chain parameters.
* :mod:`repro.experiments.runner` -- replicated, seeded sweep execution.
* :mod:`repro.experiments.report` -- tables and ASCII charts.
* :mod:`repro.experiments.cli` -- ``python -m repro.experiments fig4``.
"""

from repro.experiments.runner import SweepResult, run_sweep
from repro.experiments.scenarios import (
    ALL_SCENARIOS,
    OnOffDynamism,
    get_scenario,
)
from repro.experiments.report import ascii_chart, format_table

__all__ = [
    "ALL_SCENARIOS",
    "OnOffDynamism",
    "SweepResult",
    "ascii_chart",
    "format_table",
    "get_scenario",
    "run_sweep",
]
