"""Experiment harness: regenerates every figure of the paper.

* :mod:`repro.experiments.scenarios` -- parameter sets for Figs. 1-9 and
  the ablation sweeps, including the documented mapping from the paper's
  "environment dynamism" axis to ON/OFF chain parameters.
* :mod:`repro.experiments.runner` -- replicated, seeded sweep execution.
* :mod:`repro.experiments.executor` -- parallel cell execution and the
  content-addressed cell cache (``run_sweep(..., jobs=N, cache_dir=...)``).
* :mod:`repro.experiments.fabric` -- the coordinator/worker sweep fabric
  (typed messages, leases, heartbeats; ``execute_sweep_fabric``).
* :mod:`repro.experiments.report` -- tables and ASCII charts.
* :mod:`repro.experiments.cli` -- ``python -m repro.experiments fig4``.
"""

from repro.experiments.executor import (
    CellCache,
    SweepTiming,
    append_bench_record,
    execute_sweep,
)
from repro.experiments.fabric import (
    FabricConfig,
    FabricStats,
    WorkerChaos,
    execute_sweep_fabric,
)
from repro.experiments.runner import SweepResult, run_sweep
from repro.experiments.scenarios import (
    ALL_SCENARIOS,
    OnOffDynamism,
    get_scenario,
)
from repro.experiments.report import ascii_chart, format_table

__all__ = [
    "ALL_SCENARIOS",
    "CellCache",
    "FabricConfig",
    "FabricStats",
    "OnOffDynamism",
    "SweepResult",
    "SweepTiming",
    "WorkerChaos",
    "append_bench_record",
    "ascii_chart",
    "execute_sweep",
    "execute_sweep_fabric",
    "format_table",
    "get_scenario",
    "run_sweep",
]
