"""Scenario definitions for every figure of the paper.

The paper's figures sweep "environment dynamism".  For the ON/OFF model
the paper labels the axis "[load probability]" but does not publish the
exact chain parametrization, so we make a documented choice
(:class:`OnOffDynamism`): as the dynamism knob ``d`` rises from 0 to 1,

* the stationary loaded fraction rises linearly (``on_fraction_scale * d``)
  -- more external load, and
* the mean ON dwell time shrinks from minutes to the chain step -- load
  changes faster and faster, becoming sub-iteration ("the load changes
  dramatically during each application iteration") at the right edge.

This reproduces all three regimes of Fig. 4: quiescent left (techniques
equal), moderately dynamic middle (persistent, escapable load: adaptive
techniques win), chaotic right (uniformly churning load: techniques
converge and adaptation can hurt).

Every scenario is an :class:`ExperimentSpec`: x values plus a builder
mapping ``(x, seed)`` to a concrete platform and a list of labeled
*variants* ``(series_label, application, strategy)``.  Within one seed,
all variants share one platform object and therefore observe identical
load traces -- the paper's reason for simulating at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.app.iterative import ApplicationSpec
from repro.app.workloads import paper_application
from repro.core.policy import friendly_policy, greedy_policy, safe_policy
from repro.errors import ExperimentError
from repro.faults.plan import FaultModel
from repro.load.hyperexp import HyperexponentialLoadModel
from repro.load.onoff import OnOffLoadModel
from repro.platform.cluster import Platform, make_platform
from repro.strategies.base import Strategy
from repro.strategies.cr import CrStrategy
from repro.strategies.dlb import DlbStrategy
from repro.strategies.nothing import NothingStrategy
from repro.strategies.swapstrat import SwapStrategy
from repro.units import GB, KB, MB, MFLOPS


@dataclass(frozen=True)
class OnOffDynamism:
    """Documented mapping: dynamism knob ``d`` -> ON/OFF chain ``(p, q)``."""

    on_fraction_scale: float = 0.75
    """Stationary loaded fraction at ``d = 1``."""
    dwell_base: float = 900.0
    """Mean ON dwell at ``d = 0`` (seconds): long, persistent load events."""
    dwell_floor: float = 10.0
    """Mean ON dwell at ``d = 1`` (seconds): one chain step, pure churn."""
    step: float = 10.0
    """Markov chain step in seconds."""

    def params(self, d: float) -> "tuple[float, float]":
        """Chain probabilities ``(p, q)`` for dynamism ``d`` in [0, 1]."""
        if not 0.0 <= d <= 1.0:
            raise ExperimentError(f"dynamism must be in [0, 1], got {d}")
        on_fraction = self.on_fraction_scale * d
        mean_dwell_on = self.dwell_base * (1.0 - d) + self.dwell_floor
        q = min(1.0, self.step / mean_dwell_on)
        if on_fraction >= 1.0:
            return 1.0, q
        p = q * on_fraction / (1.0 - on_fraction)
        if p > 1.0:
            # Keep the stationary loaded fraction exact (it drives the
            # NOTHING curve); stretch the dwell instead of capping p.
            p = 1.0
            q = (1.0 - on_fraction) / on_fraction
        return p, q

    def model(self, d: float) -> OnOffLoadModel:
        p, q = self.params(d)
        return OnOffLoadModel(p=p, q=q, step=self.step)


#: The default dynamism mapping used by all ON/OFF figures.
DYNAMISM = OnOffDynamism()

#: Dynamism grid for the Fig. 4/6/7/8 sweeps.
DYNAMISM_GRID = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.85, 1.0)

#: Host speed range used by all evaluation scenarios.  Narrower than the
#: full "hundreds of megaflops" span of the platform default so that the
#: figures measure load adaptation rather than static speed heterogeneity
#: (with equal chunks, a 5x speed spread would dominate every effect the
#: paper studies).
EVALUATION_SPEED_RANGE = (250 * MFLOPS, 350 * MFLOPS)

#: "Moderately dynamic" operating point for the Fig. 5 over-allocation
#: sweep (the paper's "load probability of 0.2, which is moderately
#: dynamic").  On our dynamism axis the equivalent regime -- enough churn
#: that per-iteration rebalancing mispredicts, enough persistence that
#: escaping load pays -- sits at d=0.75.
MODERATE_DYNAMISM = 0.75

#: One variant: (series label, application, strategy).
Variant = "tuple[str, ApplicationSpec, Strategy]"

#: Builder signature: (x, seed) -> (platform, variants).
Builder = Callable[[float, int], "tuple[Platform, list[Variant]]"]


@dataclass(frozen=True)
class ExperimentSpec:
    """One figure-regenerating sweep."""

    name: str
    """Identifier, e.g. ``"fig4"``."""
    title: str
    """What the paper's figure shows."""
    xlabel: str
    x_values: "tuple[float, ...]"
    build: Builder
    paper_claim: str = ""
    """The qualitative result the paper reports for this figure."""
    default_seeds: int = 5
    context: "tuple[str, ...]" = ()
    """Extra content-address material hashed into :meth:`fingerprint`.

    Builders that depend on generated inputs beyond their own source --
    e.g. fault plans, whose realization algorithm is versioned separately
    (:data:`repro.faults.plan.PLAN_VERSION`) -- put those inputs'
    fingerprints here so cached sweep cells are invalidated when the
    generation algorithm or parameters change."""

    def __post_init__(self) -> None:
        if not self.x_values:
            raise ExperimentError(f"{self.name}: empty x grid")

    def fingerprint(self) -> str:
        """Content hash of everything that defines this sweep's cells.

        Covers the declarative fields *and the source text of the builder
        function*, so editing a scenario invalidates its cached cells (see
        :mod:`repro.experiments.executor`).  It deliberately does not chase
        the builder's transitive imports: changes to strategy or platform
        internals are covered by the package version, which participates in
        the cell cache key alongside this fingerprint.
        """
        import hashlib
        import inspect

        try:
            build_src = inspect.getsource(self.build)
        except (OSError, TypeError):  # builtins / C callables / lost source
            build_src = getattr(self.build, "__qualname__", repr(self.build))
        hasher = hashlib.sha256()
        for part in (self.name, self.title, self.xlabel,
                     repr(tuple(float(x) for x in self.x_values)),
                     str(self.default_seeds), self.paper_claim, build_src,
                     repr(tuple(self.context))):
            hasher.update(part.encode("utf-8"))
            hasher.update(b"\x00")
        return hasher.hexdigest()


def _standard_app(n_processes: int, state_bytes: float,
                  iterations: int = 50) -> ApplicationSpec:
    return paper_application(n_processes=n_processes, iterations=iterations,
                             iteration_minutes=1.0,
                             bytes_per_process=100 * KB,
                             state_bytes=state_bytes)


def _named(app: ApplicationSpec,
           strategies: "list[Strategy]") -> "list[Variant]":
    return [(s.name, app, s) for s in strategies]


def _four_techniques() -> "list[Strategy]":
    return [NothingStrategy(), SwapStrategy(greedy_policy()),
            DlbStrategy(), CrStrategy()]


def _three_policies() -> "list[Strategy]":
    return [NothingStrategy(),
            SwapStrategy(greedy_policy()),
            SwapStrategy(safe_policy()),
            SwapStrategy(friendly_policy())]


# -- Fig. 4: four techniques vs dynamism ----------------------------------

def _fig4_build(d: float, seed: int):
    platform = make_platform(32, DYNAMISM.model(d), seed=seed,
                             speed_range=EVALUATION_SPEED_RANGE)
    app = _standard_app(n_processes=4, state_bytes=1 * MB)
    return platform, _named(app, _four_techniques())


FIG4 = ExperimentSpec(
    name="fig4",
    title="Execution time of performance enhancing techniques vs "
          "environment dynamism (4 active / 32 total, 1 MB state)",
    xlabel="environment dynamism [load probability]",
    x_values=DYNAMISM_GRID,
    build=_fig4_build,
    paper_claim="Quiescent and chaotic extremes: techniques equal. "
                "Moderately dynamic middle: SWAP/DLB/CR up to ~40% "
                "better than NOTHING; DLB weak in dynamic environments.",
)


# -- Fig. 5: over-allocation sweep -----------------------------------------

OVERALLOCATION_GRID = (0.0, 25.0, 50.0, 100.0, 150.0, 200.0, 300.0)


def _fig5_build(over_pct: float, seed: int):
    n_active = 8
    n_hosts = n_active + int(round(n_active * over_pct / 100.0))
    platform = make_platform(n_hosts, DYNAMISM.model(MODERATE_DYNAMISM),
                             seed=seed, speed_range=EVALUATION_SPEED_RANGE)
    app = _standard_app(n_processes=n_active, state_bytes=1 * MB)
    return platform, _named(app, _four_techniques())


FIG5 = ExperimentSpec(
    name="fig5",
    title="Execution time vs over-allocation (8 active processes, "
          "moderately dynamic environment, 1 MB state)",
    xlabel="% overallocation",
    x_values=OVERALLOCATION_GRID,
    build=_fig5_build,
    paper_claim="SWAP and CR improve with more spares; substantial benefit "
                "needs ~100% over-allocation; DLB consistently beats "
                "NOTHING; SWAP/CR roughly double DLB's gain when "
                "over-allocation is substantial.",
)


# -- Fig. 6: process size ---------------------------------------------------

def _fig6_build(d: float, seed: int):
    platform = make_platform(32, DYNAMISM.model(d), seed=seed,
                             speed_range=EVALUATION_SPEED_RANGE)
    small = _standard_app(n_processes=4, state_bytes=1 * MB)
    large = _standard_app(n_processes=4, state_bytes=1 * GB)
    variants = [
        ("nothing", small, NothingStrategy()),
        ("dlb", small, DlbStrategy()),
        ("swap-1MB", small, SwapStrategy(greedy_policy())),
        ("cr-1MB", small, CrStrategy()),
        ("swap-1GB", large, SwapStrategy(greedy_policy())),
        ("cr-1GB", large, CrStrategy()),
    ]
    return platform, variants


FIG6 = ExperimentSpec(
    name="fig6",
    title="Execution time vs dynamism for 1 MB and 1 GB process state "
          "(SWAP and CR; 4 active / 32 total)",
    xlabel="environment dynamism [load probability]",
    x_values=DYNAMISM_GRID,
    build=_fig6_build,
    paper_claim="NOTHING and DLB are independent of process size.  SWAP "
                "and CR go from beneficial at 1 MB to harmful at 1 GB, "
                "where the swap time exceeds the iteration time.",
)


# -- Fig. 7: the three policies --------------------------------------------

def _fig7_build(d: float, seed: int):
    platform = make_platform(32, DYNAMISM.model(d), seed=seed,
                             speed_range=EVALUATION_SPEED_RANGE)
    app = _standard_app(n_processes=4, state_bytes=100 * MB)
    return platform, _named(app, _three_policies())


FIG7 = ExperimentSpec(
    name="fig7",
    title="Execution time for the greedy/safe/friendly swapping policies "
          "vs dynamism (4 active / 32 total, 100 MB state)",
    xlabel="environment dynamism",
    x_values=DYNAMISM_GRID,
    build=_fig7_build,
    paper_claim="Greedy gives the largest boost (~40% max).  Friendly "
                "nearly keeps pace in moderately chaotic settings but "
                "collapses in chaos.  Safe gains less but beats greedy in "
                "the most chaotic environments.",
)


# -- Fig. 8: policies with large process state ------------------------------

def _fig8_build(d: float, seed: int):
    platform = make_platform(32, DYNAMISM.model(d), seed=seed,
                             speed_range=EVALUATION_SPEED_RANGE)
    app = _standard_app(n_processes=2, state_bytes=1 * GB)
    return platform, _named(app, _three_policies())


FIG8 = ExperimentSpec(
    name="fig8",
    title="Swapping policies with large (1 GB) process state "
          "(2 active / 32 total; swap time ~ 2x iteration time)",
    xlabel="environment dynamism",
    x_values=DYNAMISM_GRID,
    build=_fig8_build,
    paper_claim="With 1 GB state only the safe policy is appropriate: "
                "greedy/friendly chase an unobtainable performance and "
                "spend all their time swapping.",
)


# -- Fig. 9: hyperexponential load model ------------------------------------

LIFETIME_GRID = (30.0, 60.0, 120.0, 300.0, 600.0, 1200.0, 2400.0)


def _fig9_build(mean_lifetime: float, seed: int):
    model = HyperexponentialLoadModel(mean_lifetime=mean_lifetime,
                                      utilization=0.6, branch_prob=0.1)
    platform = make_platform(32, model, seed=seed,
                             speed_range=EVALUATION_SPEED_RANGE)
    app = _standard_app(n_processes=4, state_bytes=1 * MB)
    return platform, _named(app, _four_techniques())


FIG9 = ExperimentSpec(
    name="fig9",
    title="Four techniques under the hyperexponential load model "
          "(4 active / 32 total, 1 MB state)",
    xlabel="environment dynamism [mean process lifetime, s]",
    x_values=LIFETIME_GRID,
    build=_fig9_build,
    paper_claim="Swapping remains viable; the larger share of long-running "
                "competing jobs widens the dynamism range over which "
                "swapping (and DLB/CR) is beneficial.",
)


# -- Ablations (beyond the paper's figures) ---------------------------------

PAYBACK_GRID = (0.25, 0.5, 1.0, 2.0, 4.0, 8.0, float("inf"))


def _ablation_payback_build(threshold: float, seed: int):
    platform = make_platform(32, DYNAMISM.model(0.7), seed=seed,
                             speed_range=EVALUATION_SPEED_RANGE)
    app = _standard_app(n_processes=4, state_bytes=100 * MB)
    policy = greedy_policy().with_overrides(
        name="payback-swept", payback_threshold=threshold)
    return platform, [("nothing", app, NothingStrategy()),
                      ("swap", app, SwapStrategy(policy))]


ABLATION_PAYBACK = ExperimentSpec(
    name="ablation-payback",
    title="Ablation: payback threshold at fixed dynamism (d=0.7, "
          "100 MB state)",
    xlabel="payback threshold [iterations]",
    x_values=PAYBACK_GRID,
    build=_ablation_payback_build,
    paper_claim="Section 4.1: smaller payback thresholds indicate more "
                "risk-aversion.",
)

HISTORY_GRID = (0.0, 30.0, 60.0, 120.0, 300.0, 600.0)


def _ablation_history_build(window: float, seed: int):
    platform = make_platform(32, DYNAMISM.model(0.7), seed=seed,
                             speed_range=EVALUATION_SPEED_RANGE)
    app = _standard_app(n_processes=4, state_bytes=100 * MB)
    policy = greedy_policy().with_overrides(
        name="history-swept", history_window=window)
    return platform, [("nothing", app, NothingStrategy()),
                      ("swap", app, SwapStrategy(policy))]


ABLATION_HISTORY = ExperimentSpec(
    name="ablation-history",
    title="Ablation: performance-history window at fixed dynamism (d=0.7, "
          "100 MB state)",
    xlabel="history window [s]",
    x_values=HISTORY_GRID,
    build=_ablation_history_build,
    paper_claim="Section 4.1: more history damps swap frequency but can "
                "miss good swapping opportunities.",
)

# The binary ON/OFF load makes an unloaded spare exactly 2x a loaded
# active (a 100% process improvement), so the grid must cross 1.0 for the
# stiction threshold to bind.
IMPROVEMENT_GRID = (0.0, 0.1, 0.25, 0.5, 0.9, 1.5)


def _ablation_improvement_build(threshold: float, seed: int):
    platform = make_platform(32, DYNAMISM.model(0.5), seed=seed,
                             speed_range=EVALUATION_SPEED_RANGE)
    app = _standard_app(n_processes=4, state_bytes=100 * MB)
    policy = greedy_policy().with_overrides(
        name="improvement-swept", min_process_improvement=threshold)
    return platform, [("nothing", app, NothingStrategy()),
                      ("swap", app, SwapStrategy(policy))]


ABLATION_IMPROVEMENT = ExperimentSpec(
    name="ablation-improvement",
    title="Ablation: minimum process improvement threshold (d=0.5, "
          "100 MB state)",
    xlabel="min process improvement threshold",
    x_values=IMPROVEMENT_GRID,
    build=_ablation_improvement_build,
    paper_claim="Section 4.1: higher thresholds add swapping stiction.",
)

MAXSWAP_GRID = (1.0, 2.0, 4.0, 8.0)


def _ablation_maxswaps_build(max_swaps: float, seed: int):
    platform = make_platform(32, DYNAMISM.model(0.5), seed=seed,
                             speed_range=EVALUATION_SPEED_RANGE)
    app = _standard_app(n_processes=8, state_bytes=10 * MB)
    policy = greedy_policy().with_overrides(
        name="maxswaps-swept", max_swaps_per_decision=int(max_swaps))
    return platform, [("nothing", app, NothingStrategy()),
                      ("swap", app, SwapStrategy(policy))]


ABLATION_MAXSWAPS = ExperimentSpec(
    name="ablation-maxswaps",
    title="Ablation: cap on swaps per decision epoch (d=0.5, 8 active, "
          "10 MB state)",
    xlabel="max swaps per decision",
    x_values=MAXSWAP_GRID,
    build=_ablation_maxswaps_build,
    paper_claim='Section 4.2: policies "swap the slowest active '
                'processor(s) for the fastest inactive processor(s)".',
)


# -- Extension: over-allocation vs MPI-2 dynamic spawning ---------------------

RUN_LENGTH_GRID = (3.0, 6.0, 12.0, 25.0, 50.0, 100.0)


def _ext_spawn_build(iterations: float, seed: int):
    from repro.strategies.spawnswap import SpawnSwapStrategy

    platform = make_platform(32, DYNAMISM.model(0.5), seed=seed,
                             speed_range=EVALUATION_SPEED_RANGE)
    app = _standard_app(n_processes=4, state_bytes=1 * MB,
                        iterations=int(iterations))
    variants = [
        ("nothing", app, NothingStrategy()),
        ("swap-overalloc", app, SwapStrategy(greedy_policy())),
        ("swap-spawn", app, SpawnSwapStrategy(greedy_policy())),
    ]
    return platform, variants


EXT_SPAWN = ExperimentSpec(
    name="ext-spawn",
    title="Extension: over-allocation vs MPI-2 dynamic spawning, by run "
          "length (4 active / 32 total, d=0.5, 1 MB state)",
    xlabel="application length [iterations]",
    x_values=RUN_LENGTH_GRID,
    build=_ext_spawn_build,
    paper_claim="Section 7.1: over-allocating 28 spares adds ~21 s of "
                "startup, so 'for very short-running applications ... "
                "SWAP performs worse'; Section 3: MPI-2 dynamic process "
                "management 'could remove the need for over-allocation'.",
)


# -- Extension: GrADS-style contract-gated swapping ---------------------------


def _ext_contracts_build(d: float, seed: int):
    from repro.contracts.strategy import ContractSwapStrategy

    platform = make_platform(32, DYNAMISM.model(d), seed=seed,
                             speed_range=EVALUATION_SPEED_RANGE)
    app = _standard_app(n_processes=4, state_bytes=1 * MB)
    variants = [
        ("nothing", app, NothingStrategy()),
        ("swap-every-iter", app, SwapStrategy(greedy_policy())),
        ("swap-contract", app, ContractSwapStrategy(greedy_policy())),
    ]
    return platform, variants


EXT_CONTRACTS = ExperimentSpec(
    name="ext-contracts",
    title="Extension: contract-gated vs every-iteration swap decisions "
          "(4 active / 32 total, 1 MB state)",
    xlabel="environment dynamism",
    x_values=DYNAMISM_GRID,
    build=_ext_contracts_build,
    paper_claim="Section 8: 'work is underway to integrate process "
                "swapping in the GrADS architecture' -- where a "
                "performance-contract monitor gates rescheduling actions.",
)


# -- Extension: replayed diurnal traces (the paper's future work) -------------

START_HOUR_GRID = (2.0, 6.0, 8.0, 10.0, 14.0, 16.0, 20.0)


def _ext_replay_build(start_hour: float, seed: int):
    from repro.load.base import ConstantLoadModel
    from repro.load.trace import ReplayLoadModel

    def factory(i: int):
        if i % 4 == 3:
            return ConstantLoadModel(0)  # an ownerless lab machine
        # Office workstations: owners keep similar but jittered hours.
        jitter = ((i % 3) - 1) * 0.5
        return ReplayLoadModel.diurnal(phase_hours=jitter - start_hour)

    platform = make_platform(32, factory, seed=seed,
                             speed_range=EVALUATION_SPEED_RANGE)
    app = _standard_app(n_processes=4, state_bytes=1 * MB)
    return platform, _named(app, _four_techniques())


EXT_REPLAY = ExperimentSpec(
    name="ext-replay",
    title="Extension: replayed diurnal office traces, by application "
          "start hour (4 active / 32 total; every 4th host is an "
          "ownerless lab machine)",
    xlabel="application start hour [h of day]",
    x_values=START_HOUR_GRID,
    build=_ext_replay_build,
    paper_claim="Section 8 (future work): 'Augmenting the simulation with "
                "CPU load traces that better reflect actual environments "
                "will help ensure our policies are beneficial.'  The "
                "validation platform was an HP intranet of personal "
                "workstations -- i.e. diurnal usage.",
)


# -- Extension: owner reclamation (desktop-grid eviction) --------------------

PRESENCE_GRID = (0.0, 0.1, 0.2, 0.3, 0.45, 0.6)


def _ext_eviction_build(presence: float, seed: int):
    from repro.load.owner import OwnerActivityModel

    model = OwnerActivityModel(presence_fraction=presence,
                               mean_presence=600.0,
                               base=OnOffLoadModel(p=0.01, q=0.02))
    platform = make_platform(32, model, seed=seed,
                             speed_range=EVALUATION_SPEED_RANGE)
    app = _standard_app(n_processes=4, state_bytes=1 * MB)
    return platform, _named(app, _four_techniques())


EXT_EVICTION = ExperimentSpec(
    name="ext-eviction",
    title="Extension: techniques under desktop-grid owner reclamation "
          "(4 active / 32 total, 1 MB state, 10-minute owner sessions)",
    xlabel="owner presence fraction",
    x_values=PRESENCE_GRID,
    build=_ext_eviction_build,
    paper_claim="Section 2 (sketched, not evaluated): combining swapping "
                "with Condor-style eviction lets a process be migrated "
                "both when its resource is reclaimed and for performance; "
                "a revoked process that cannot move simply stalls.",
)


# -- Extension: fault injection (host revocation and recovery) ---------------

#: Host revocations per host-hour.  0 is the fault-free control; 8 means
#: a host drops out every 7.5 minutes on average -- faster than the mean
#: downtime, so several hosts are typically dark at once.
FAULT_RATE_GRID = (0.0, 0.5, 1.0, 2.0, 4.0, 8.0)


def _ext_faults_model(rate: float) -> FaultModel:
    return FaultModel(revocation_rate=rate, mean_downtime=300.0,
                      transfer_failure_prob=0.05, store_outage_rate=0.5,
                      mean_store_outage=120.0)


def _ext_faults_build(rate: float, seed: int):
    platform = make_platform(32, DYNAMISM.model(0.3), seed=seed,
                             speed_range=EVALUATION_SPEED_RANGE,
                             fault_model=_ext_faults_model(rate))
    app = _standard_app(n_processes=4, state_bytes=1 * MB)
    return platform, _named(app, _four_techniques())


EXT_FAULTS = ExperimentSpec(
    name="ext-faults",
    title="Extension: techniques under host revocation faults, by "
          "revocation rate (4 active / 32 total, d=0.3, 1 MB state, "
          "5-minute mean downtime)",
    xlabel="revocation rate [per host-hour]",
    x_values=FAULT_RATE_GRID,
    build=_ext_faults_build,
    paper_claim="Section 2 (sketched, not evaluated): a swap-capable "
                "application can treat a revoked processor like a slow "
                "one and promote a spare, while a static MPI application "
                "stalls until the processor returns.",
    context=tuple(_ext_faults_model(rate).fingerprint()
                  for rate in FAULT_RATE_GRID),
)


ALL_SCENARIOS: "dict[str, ExperimentSpec]" = {
    spec.name: spec
    for spec in (FIG4, FIG5, FIG6, FIG7, FIG8, FIG9,
                 ABLATION_PAYBACK, ABLATION_HISTORY,
                 ABLATION_IMPROVEMENT, ABLATION_MAXSWAPS,
                 EXT_EVICTION, EXT_SPAWN, EXT_REPLAY, EXT_CONTRACTS,
                 EXT_FAULTS)
}


def get_scenario(name: str) -> ExperimentSpec:
    try:
        return ALL_SCENARIOS[name]
    except KeyError:
        raise ExperimentError(
            f"unknown scenario {name!r}; choose from {sorted(ALL_SCENARIOS)}"
        ) from None
