"""Exception hierarchy for the :mod:`repro` package.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch a single base class.  Subsystems raise the most specific
subclass available.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class SimulationError(ReproError):
    """Error in the discrete-event simulation kernel."""


class SchedulingError(SimulationError):
    """An event was scheduled in the past or otherwise illegally."""


class ProcessError(SimulationError):
    """A simulated process was used incorrectly (e.g. resumed twice)."""


class PlatformError(ReproError):
    """Invalid platform description (hosts, links, cluster)."""


class LoadModelError(ReproError):
    """Invalid CPU load model parameters or trace."""


class MpiError(ReproError):
    """Error in the simulated MPI layer (:mod:`repro.smpi`)."""


class CommunicatorError(MpiError):
    """Invalid communicator, group, or rank."""


class SwapError(ReproError):
    """Error in the process swapping runtime (:mod:`repro.swap`)."""


class PolicyError(ReproError):
    """Invalid swap policy parameters or decision inputs."""


class StrategyError(ReproError):
    """Error while executing an application strategy simulation."""


class ExperimentError(ReproError):
    """Invalid experiment configuration."""


class FabricError(ExperimentError):
    """Error in the distributed sweep fabric (:mod:`repro.experiments.fabric`):
    protocol violations, unusable transports, or loss of every worker."""


class ObservabilityError(ReproError):
    """Invalid trace record, metric operation, or export (:mod:`repro.obs`)."""


class FaultError(ReproError):
    """Invalid fault model parameters or fault plan query (:mod:`repro.faults`)."""
