"""A simulated MPI subset ("smpi") on the discrete-event kernel.

The paper's mechanism (from the authors' earlier tech report) is "a
sleight-of-hand played in MPI user space": over-allocated processes, two
private communicators, and hijacked MPI calls.  To reproduce that
mechanism faithfully -- and testably -- this package provides an MPI-1
style programming model whose processes are simulation coroutines:

* ranks, groups and :class:`~repro.smpi.comm.Communicator` objects
  (including communicator splitting, which the swap runtime uses for its
  two private communicators);
* blocking and non-blocking point-to-point messaging with
  (source, tag, communicator) matching, carried over the shared
  :class:`~repro.platform.network.FairShareLink`;
* collectives (barrier, bcast, reduce, allreduce, gather, scatter,
  allgather) built from point-to-point trees;
* a per-process MPI startup cost (0.75 s/process, as the paper measured).

User code is a generator function taking an :class:`~repro.smpi.api.Rank`
handle; every communication or compute call is ``yield from``-ed, exactly
like blocking MPI calls.
"""

from repro.smpi.comm import Communicator, Group
from repro.smpi.datatypes import ANY_SOURCE, ANY_TAG, Message, Status
from repro.smpi.runtime import MpiJob, MpiRuntime
from repro.smpi.api import Rank

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "Communicator",
    "Group",
    "Message",
    "MpiJob",
    "MpiRuntime",
    "Rank",
    "Status",
]
