"""The simulated MPI runtime: job launch and the messaging fabric.

An :class:`MpiRuntime` binds a set of platform hosts (one MPI process per
host, as in the paper's environment) to a shared
:class:`~repro.platform.network.FairShareLink` and a per-rank mailbox.
:meth:`MpiRuntime.launch` starts one coroutine per rank after the modelled
``mpirun`` startup cost of 0.75 s per process -- the over-allocation cost
the paper's Fig. 5 discussion quantifies ("an over-allocation of 30
processors adds approximately 20 seconds to the application startup
time").
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Sequence

from repro.errors import MpiError
from repro.platform.host import Host
from repro.platform.network import FairShareLink, LinkSpec
from repro.simkernel.engine import Simulator
from repro.simkernel.events import AllOf, Event
from repro.simkernel.process import Process
from repro.simkernel.resources import Mailbox
from repro.smpi.comm import Communicator, Group

#: User tags must stay below this; collectives use the space above it.
COLLECTIVE_TAG_BASE = 1 << 20


class MpiRuntime:
    """Messaging fabric shared by all ranks of one MPI job."""

    def __init__(self, sim: Simulator, hosts: "Sequence[Host]",
                 link: LinkSpec | None = None,
                 startup_per_process: float = 0.75) -> None:
        if not hosts:
            raise MpiError("need at least one host")
        if startup_per_process < 0:
            raise MpiError("startup_per_process must be >= 0")
        self.sim = sim
        self.hosts = list(hosts)
        self.link_spec = link or LinkSpec()
        self.link = FairShareLink(sim, self.link_spec)
        self.startup_per_process = float(startup_per_process)
        self.world = Communicator(Group(range(len(self.hosts))),
                                  name="MPI_COMM_WORLD")
        self.mailboxes = {rank: Mailbox(sim) for rank in range(len(self.hosts))}
        #: Total point-to-point messages delivered (diagnostics/tests).
        self.messages_delivered = 0

    @property
    def size(self) -> int:
        return len(self.hosts)

    def host_of(self, world_rank: int) -> Host:
        if not 0 <= world_rank < self.size:
            raise MpiError(f"world rank {world_rank} out of range")
        return self.hosts[world_rank]

    def launch(self, mains: "Sequence[Callable[..., Generator]]",
               *args: Any) -> "MpiJob":
        """Start one coroutine per rank after the modelled startup.

        ``mains[i]`` is a generator function invoked as
        ``mains[i](rank_api, *args)`` for world rank ``i``.  All ranks
        begin at ``now + 0.75 * size`` (a sequential ``mpirun`` launch).
        """
        from repro.smpi.api import Rank  # local import: cycle guard

        if len(mains) != self.size:
            raise MpiError(
                f"need one main per rank: got {len(mains)} for {self.size}")
        startup = self.startup_per_process * self.size

        def boot(main: Callable[..., Generator], world_rank: int) -> Generator:
            yield self.sim.timeout(startup)
            api = Rank(self, world_rank)
            result = yield from main(api, *args)
            return result

        processes = [self.sim.process(boot(main, i), name=f"rank{i}")
                     for i, main in enumerate(mains)]
        return MpiJob(self, processes, startup_time=startup)


class MpiJob:
    """Handle on a launched job: per-rank processes and completion."""

    def __init__(self, runtime: MpiRuntime, processes: "list[Process]",
                 startup_time: float) -> None:
        self.runtime = runtime
        self.processes = processes
        self.startup_time = startup_time
        self.done: Event = AllOf(runtime.sim, processes)

    def results(self) -> "list[Any]":
        """Per-rank return values; raises if the job has not finished."""
        if not self.done.processed:
            raise MpiError("job has not completed yet")
        return [p.value for p in self.processes]

    def run_to_completion(self) -> "list[Any]":
        """Drive the simulator until every rank returns."""
        self.runtime.sim.run(until=self.done)
        return self.results()
