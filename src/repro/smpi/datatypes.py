"""Message envelopes and matching wildcards for the simulated MPI."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import MpiError

#: Match any sender in a receive (MPI_ANY_SOURCE).
ANY_SOURCE = -1

#: Match any tag in a receive (MPI_ANY_TAG).
ANY_TAG = -1


@dataclass(frozen=True)
class Message:
    """An in-flight or delivered message envelope.

    ``payload`` is arbitrary Python data (the simulation does not copy
    it); ``nbytes`` is the modelled wire size that determined the
    transfer time.
    """

    source: int
    """Sender's rank within the carrying communicator."""
    dest: int
    """Receiver's rank within the carrying communicator."""
    tag: int
    comm_id: int
    """Context id of the carrying communicator (isolates traffic)."""
    nbytes: float
    payload: Any = None

    def __post_init__(self) -> None:
        if self.tag < 0:
            raise MpiError(f"message tags must be >= 0, got {self.tag}")
        if self.nbytes < 0:
            raise MpiError(f"negative message size {self.nbytes}")


@dataclass
class Status:
    """Receive status (MPI_Status): who sent, which tag, how big."""

    source: int = ANY_SOURCE
    tag: int = ANY_TAG
    nbytes: float = 0.0

    def set_from(self, message: Message) -> None:
        self.source = message.source
        self.tag = message.tag
        self.nbytes = message.nbytes


def match(message: Message, comm_id: int, source: int, tag: int) -> bool:
    """MPI matching rule for a posted receive."""
    if message.comm_id != comm_id:
        return False
    if source != ANY_SOURCE and message.source != source:
        return False
    if tag != ANY_TAG and message.tag != tag:
        return False
    return True
