"""The per-rank MPI programming interface.

A :class:`Rank` is the handle user coroutines receive; its blocking
operations are generators and must be ``yield from``-ed::

    def main(rank):
        yield from rank.compute(1e9)
        if rank.world_rank == 0:
            yield from rank.send(1, nbytes=1e6, payload="hello")
        else:
            msg = yield from rank.recv(source=0)
        yield from rank.barrier()

Point-to-point uses an eager protocol: the payload crosses the shared
link (paying latency and its fair bandwidth share) and is then queued at
the receiver, where it matches posted receives MPI-style on
(communicator, source, tag).
"""

from __future__ import annotations

from typing import Any, Callable, Generator

from repro.errors import MpiError
from repro.simkernel.events import Event
from repro.smpi.comm import Communicator
from repro.smpi.datatypes import ANY_SOURCE, ANY_TAG, Message, Status, match
from repro.smpi.runtime import COLLECTIVE_TAG_BASE, MpiRuntime


class Rank:
    """One MPI process's view of the runtime."""

    def __init__(self, runtime: MpiRuntime, world_rank: int) -> None:
        self.runtime = runtime
        self.world_rank = world_rank
        self.host = runtime.host_of(world_rank)
        #: Per-communicator collective sequence numbers (must advance in
        #: the same order on every rank -- the usual MPI requirement).
        self._collective_seq: "dict[int, int]" = {}

    # -- basics ----------------------------------------------------------

    @property
    def comm_world(self) -> Communicator:
        return self.runtime.world

    @property
    def now(self) -> float:
        return self.runtime.sim.now

    def sleep(self, seconds: float) -> Generator:
        """Idle for ``seconds`` of simulated time."""
        yield self.runtime.sim.timeout(seconds)

    def compute(self, flops: float) -> Generator:
        """Burn ``flops`` at this host's time-varying effective speed."""
        finish = self.host.compute_finish(self.now, flops)
        yield self.runtime.sim.timeout(finish - self.now)

    # -- point-to-point ----------------------------------------------------

    def _resolve(self, comm: Communicator | None) -> Communicator:
        comm = comm or self.comm_world
        if not comm.contains(self.world_rank):
            raise MpiError(
                f"world rank {self.world_rank} is not in {comm.name!r}")
        return comm

    def send(self, dest: int, nbytes: float = 0.0, payload: Any = None,
             tag: int = 0, comm: Communicator | None = None) -> Generator:
        """Blocking send to local rank ``dest`` of ``comm``."""
        comm = self._resolve(comm)
        if tag >= COLLECTIVE_TAG_BASE:
            raise MpiError(f"user tags must be < {COLLECTIVE_TAG_BASE}")
        yield from self._send_raw(dest, nbytes, payload, tag, comm)

    def _send_raw(self, dest: int, nbytes: float, payload: Any,
                  tag: int, comm: Communicator) -> Generator:
        dest_world = comm.world_rank(dest)
        message = Message(source=comm.rank_of(self.world_rank), dest=dest,
                          tag=tag, comm_id=comm.context_id,
                          nbytes=float(nbytes), payload=payload)
        yield self.runtime.link.transfer(nbytes)
        self.runtime.mailboxes[dest_world].put(message)
        self.runtime.messages_delivered += 1

    def isend(self, dest: int, nbytes: float = 0.0, payload: Any = None,
              tag: int = 0, comm: Communicator | None = None) -> Event:
        """Non-blocking send; yield the returned event to complete it."""
        comm = self._resolve(comm)
        if tag >= COLLECTIVE_TAG_BASE:
            raise MpiError(f"user tags must be < {COLLECTIVE_TAG_BASE}")
        return self.runtime.sim.process(
            self._send_raw(dest, nbytes, payload, tag, comm),
            name=f"isend{self.world_rank}->{dest}")

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG,
             comm: Communicator | None = None,
             status: Status | None = None) -> Generator:
        """Blocking receive; returns the matched :class:`Message`."""
        event = self.irecv(source=source, tag=tag, comm=comm)
        message = yield event
        if status is not None:
            status.set_from(message)
        return message

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG,
              comm: Communicator | None = None) -> Event:
        """Non-blocking receive; the event's value is the Message."""
        comm = self._resolve(comm)
        return self.runtime.mailboxes[self.world_rank].get(
            lambda m: match(m, comm.context_id, source, tag))

    def waitall(self, events) -> Generator:
        """Wait for several pending operations (MPI_Waitall).

        ``events`` are requests from :meth:`isend` / :meth:`irecv`;
        returns their values in order.
        """
        from repro.simkernel.events import AllOf

        events = list(events)
        if events:
            yield AllOf(self.runtime.sim, events)
        return [event.value for event in events]

    def probe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG,
              comm: Communicator | None = None) -> int:
        """Number of already-queued matching messages (MPI_Iprobe-ish)."""
        comm = self._resolve(comm)
        return self.runtime.mailboxes[self.world_rank].peek_count(
            lambda m: match(m, comm.context_id, source, tag))

    # -- collectives --------------------------------------------------------

    def _coll_tag(self, comm: Communicator) -> int:
        seq = self._collective_seq.get(comm.context_id, 0)
        self._collective_seq[comm.context_id] = seq + 1
        return COLLECTIVE_TAG_BASE + (seq % COLLECTIVE_TAG_BASE)

    def barrier(self, comm: Communicator | None = None) -> Generator:
        """Linear barrier: gather zero-byte tokens at rank 0, then release."""
        comm = self._resolve(comm)
        tag = self._coll_tag(comm)
        me = comm.rank_of(self.world_rank)
        if comm.size == 1:
            return
        if me == 0:
            for _ in range(comm.size - 1):
                yield from self._recv_coll(ANY_SOURCE, tag, comm)
            for peer in range(1, comm.size):
                yield from self._send_raw(peer, 0.0, None, tag, comm)
        else:
            yield from self._send_raw(0, 0.0, None, tag, comm)
            yield from self._recv_coll(0, tag, comm)

    def _recv_coll(self, source: int, tag: int,
                   comm: Communicator) -> Generator:
        message = yield self.runtime.mailboxes[self.world_rank].get(
            lambda m: match(m, comm.context_id, source, tag))
        return message

    def bcast(self, value: Any = None, nbytes: float = 0.0, root: int = 0,
              comm: Communicator | None = None) -> Generator:
        """Binomial-tree broadcast; every rank returns the root's value."""
        comm = self._resolve(comm)
        tag = self._coll_tag(comm)
        me = comm.rank_of(self.world_rank)
        size = comm.size
        relative = (me - root) % size
        if relative != 0:
            message = yield from self._recv_coll(ANY_SOURCE, tag, comm)
            value = message.payload
        # Binomial fan-out: after receiving, forward to peers whose
        # relative rank differs in one higher bit.
        mask = 1
        while mask < size:
            if relative & (mask - 1) == 0 and relative & mask == 0:
                peer_rel = relative | mask
                if peer_rel < size:
                    peer = (peer_rel + root) % size
                    yield from self._send_raw(peer, nbytes, value, tag, comm)
            mask <<= 1
        return value

    def gather(self, value: Any = None, nbytes: float = 0.0, root: int = 0,
               comm: Communicator | None = None) -> Generator:
        """Linear gather; root returns the rank-ordered list, others None."""
        comm = self._resolve(comm)
        tag = self._coll_tag(comm)
        me = comm.rank_of(self.world_rank)
        if me == root:
            values: "list[Any]" = [None] * comm.size
            values[me] = value
            for _ in range(comm.size - 1):
                message = yield from self._recv_coll(ANY_SOURCE, tag, comm)
                values[message.source] = message.payload
            return values
        yield from self._send_raw(root, nbytes, value, tag, comm)
        return None

    def scatter(self, values: "list[Any] | None" = None, nbytes: float = 0.0,
                root: int = 0, comm: Communicator | None = None) -> Generator:
        """Linear scatter; every rank returns its element of the root list."""
        comm = self._resolve(comm)
        tag = self._coll_tag(comm)
        me = comm.rank_of(self.world_rank)
        if me == root:
            if values is None or len(values) != comm.size:
                raise MpiError(
                    f"scatter root needs one value per rank ({comm.size})")
            for peer in range(comm.size):
                if peer != me:
                    yield from self._send_raw(peer, nbytes, values[peer],
                                              tag, comm)
            return values[me]
        message = yield from self._recv_coll(root, tag, comm)
        return message.payload

    def reduce(self, value: Any, op: Callable[[Any, Any], Any],
               nbytes: float = 0.0, root: int = 0,
               comm: Communicator | None = None) -> Generator:
        """Linear reduce; root returns the folded value, others None."""
        comm = self._resolve(comm)
        tag = self._coll_tag(comm)
        me = comm.rank_of(self.world_rank)
        if me == root:
            accumulated = value
            for _ in range(comm.size - 1):
                message = yield from self._recv_coll(ANY_SOURCE, tag, comm)
                accumulated = op(accumulated, message.payload)
            return accumulated
        yield from self._send_raw(root, nbytes, value, tag, comm)
        return None

    def allreduce(self, value: Any, op: Callable[[Any, Any], Any],
                  nbytes: float = 0.0,
                  comm: Communicator | None = None) -> Generator:
        """Reduce to rank 0, then broadcast the result."""
        comm = self._resolve(comm)
        reduced = yield from self.reduce(value, op, nbytes=nbytes, root=0,
                                         comm=comm)
        result = yield from self.bcast(reduced, nbytes=nbytes, root=0,
                                       comm=comm)
        return result

    def allgather(self, value: Any, nbytes: float = 0.0,
                  comm: Communicator | None = None) -> Generator:
        """Gather to rank 0, then broadcast the list."""
        comm = self._resolve(comm)
        gathered = yield from self.gather(value, nbytes=nbytes, root=0,
                                          comm=comm)
        result = yield from self.bcast(gathered,
                                       nbytes=nbytes * max(comm.size, 1),
                                       root=0, comm=comm)
        return result

    def alltoall(self, values: "list[Any]", nbytes: float = 0.0,
                 comm: Communicator | None = None) -> Generator:
        """Personalized all-to-all: rank ``i`` sends ``values[j]`` to
        rank ``j`` and returns the list of items addressed to it,
        ordered by source rank.

        Sends are posted non-blocking first, then receives are matched
        by (source, tag), so all pairwise transfers contend for the
        shared link concurrently -- the collective the shared-medium
        model is hardest on.
        """
        comm = self._resolve(comm)
        tag = self._coll_tag(comm)
        me = comm.rank_of(self.world_rank)
        size = comm.size
        if values is None or len(values) != size:
            raise MpiError(f"alltoall needs one value per rank ({size})")
        pending = []
        for peer in range(size):
            if peer != me:
                pending.append(self.runtime.sim.process(
                    self._send_raw(peer, nbytes, values[peer], tag, comm),
                    name=f"a2a{me}->{peer}"))
        result: "list[Any]" = [None] * size
        result[me] = values[me]
        for _ in range(size - 1):
            message = yield from self._recv_coll(ANY_SOURCE, tag, comm)
            result[message.source] = message.payload
        yield from self.waitall(pending)
        return result

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Rank {self.world_rank} on {self.host.name}>"
