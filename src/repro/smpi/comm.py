"""Groups and communicators.

A :class:`Group` is an ordered set of *world ranks*; a
:class:`Communicator` binds a group to a context id so that traffic on
different communicators never matches.  The swap runtime relies on this:
"we have used ... two private MPI communicators.  All inter-process
communication uses standard MPI calls, over these two private MPI
communicators and over MPI_COMM_WORLD."
"""

from __future__ import annotations

from itertools import count
from typing import Iterable, Sequence

from repro.errors import CommunicatorError

_context_ids = count(1)


class Group:
    """An ordered, duplicate-free set of world ranks."""

    __slots__ = ("_members", "_index")

    def __init__(self, members: Iterable[int]) -> None:
        members = tuple(int(m) for m in members)
        if len(set(members)) != len(members):
            raise CommunicatorError(f"duplicate ranks in group: {members}")
        if any(m < 0 for m in members):
            raise CommunicatorError(f"negative world rank in group: {members}")
        self._members = members
        self._index = {world: local for local, world in enumerate(members)}

    @property
    def size(self) -> int:
        return len(self._members)

    @property
    def members(self) -> "tuple[int, ...]":
        return self._members

    def rank_of(self, world_rank: int) -> int:
        """Local rank of a world rank; raises if not a member."""
        try:
            return self._index[world_rank]
        except KeyError:
            raise CommunicatorError(
                f"world rank {world_rank} is not in this group") from None

    def world_rank(self, local_rank: int) -> int:
        """World rank behind a local rank."""
        if not 0 <= local_rank < self.size:
            raise CommunicatorError(
                f"local rank {local_rank} out of range [0, {self.size})")
        return self._members[local_rank]

    def contains(self, world_rank: int) -> bool:
        return world_rank in self._index

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Group{self._members}"


class Communicator:
    """A group plus a private context id."""

    __slots__ = ("group", "context_id", "name")

    def __init__(self, group: Group, name: str = "comm") -> None:
        self.group = group
        self.context_id = next(_context_ids)
        self.name = name

    @property
    def size(self) -> int:
        return self.group.size

    def rank_of(self, world_rank: int) -> int:
        return self.group.rank_of(world_rank)

    def world_rank(self, local_rank: int) -> int:
        return self.group.world_rank(local_rank)

    def contains(self, world_rank: int) -> bool:
        return self.group.contains(world_rank)

    def sub(self, world_ranks: Sequence[int], name: str | None = None,
            ) -> "Communicator":
        """A new communicator over a subset of this one's world ranks.

        The MPI analogue is ``MPI_Comm_create``; the swap runtime uses it
        to build its active/spare private communicators.
        """
        for world in world_ranks:
            if not self.contains(world):
                raise CommunicatorError(
                    f"world rank {world} is not in {self.name!r}")
        return Communicator(Group(world_ranks),
                            name=name or f"{self.name}.sub")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Communicator {self.name!r} size={self.size} "
                f"ctx={self.context_id}>")
