"""Wire protocol between application processes, handlers and the manager.

All control messages are small (:data:`CONTROL_MSG_BYTES`) and travel on
the private control communicator; only state transfers are large.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Modelled size of a control message on the wire (bytes).
CONTROL_MSG_BYTES = 256.0


# -- handler -> manager ------------------------------------------------------

@dataclass(frozen=True)
class Hello:
    """First message from each handler: static facts about its process."""

    rank: int
    """World rank of the application process."""
    speed: float
    """Benchmarked unloaded host speed (flop/s)."""
    state_bytes: float
    """Registered process state size (the swap payload)."""
    availability: float
    """CPU availability observed at startup, in (0, 1]."""


@dataclass(frozen=True)
class IterationReport:
    """An active process finished an iteration."""

    rank: int
    iteration: int
    measured_rate: float
    """Observed flop/s over the iteration's compute phase."""


@dataclass(frozen=True)
class ProbeReport:
    """A spare's handler probed its host."""

    rank: int
    availability: float
    """Instantaneous CPU availability in (0, 1]."""


@dataclass(frozen=True)
class Done:
    """An active process completed its final iteration."""

    rank: int


# -- manager -> handler ------------------------------------------------------

@dataclass(frozen=True)
class Proceed:
    """Verdict: keep computing on the current processor."""

    iteration: int
    active: "tuple[int, ...]"
    """Current active world ranks (drives the runtime-managed exchange)."""


@dataclass(frozen=True)
class SwapOut:
    """Verdict: transfer state to ``partner`` and become a spare."""

    iteration: int
    partner: int
    """World rank of the spare taking over."""
    active: "tuple[int, ...]"
    """Active set after this decision epoch's swaps."""


@dataclass(frozen=True)
class SwapIn:
    """Command to a spare: receive state from ``partner`` and activate."""

    iteration: int
    partner: int
    """World rank of the active process being retired."""
    active: "tuple[int, ...]"
    """Active set after this decision epoch's swaps."""


@dataclass(frozen=True)
class Shutdown:
    """The application finished; spares and their handlers may exit."""
