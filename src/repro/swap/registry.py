"""The ``swap_register()`` state registry.

"The user must register static variables that need to be saved and
communicated when a swap occurs.  This is done via a series of calls to
the swap_register() function."  The registry tracks the named state
blocks and their total size -- the ``process size`` of the payback
algebra.
"""

from __future__ import annotations

from repro.errors import SwapError


class StateRegistry:
    """Named application state blocks to move on a swap."""

    def __init__(self) -> None:
        self._blocks: "dict[str, float]" = {}

    def register(self, name: str, nbytes: float) -> None:
        """Register one state block; names must be unique."""
        if not name:
            raise SwapError("state block needs a non-empty name")
        if name in self._blocks:
            raise SwapError(f"state block {name!r} already registered")
        if nbytes < 0:
            raise SwapError(f"negative state size {nbytes}")
        self._blocks[name] = float(nbytes)

    def unregister(self, name: str) -> None:
        """Remove a block (e.g. a temporary no longer worth moving)."""
        try:
            del self._blocks[name]
        except KeyError:
            raise SwapError(f"state block {name!r} is not registered") from None

    @property
    def total_bytes(self) -> float:
        """The process size moved on a swap."""
        return sum(self._blocks.values())

    @property
    def names(self) -> "tuple[str, ...]":
        return tuple(self._blocks)

    def __len__(self) -> int:
        return len(self._blocks)

    def __contains__(self, name: str) -> bool:
        return name in self._blocks

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<StateRegistry {len(self)} blocks, {self.total_bytes:g} B>"
