"""The per-process swap handler.

"Each MPI process is accompanied by a swap handler which is a separate
process responsible for coordination with other processes in the runtime
system."  The handler:

* forwards the application's Hello / iteration reports / Done to the
  manager over the private control communicator;
* relays the manager's verdicts (Proceed / SwapOut / SwapIn / Shutdown)
  back to the application process;
* while its process is a *spare*, periodically probes the host's CPU
  availability and reports it -- the runtime's environmental sensor (the
  role NWS played in the real prototype).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

from repro.simkernel.events import AnyOf
from repro.swap import protocol

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.smpi.api import Rank
    from repro.swap.context import SwapContext
    from repro.swap.runtime import SwapRuntime


def handler_loop(runtime: "SwapRuntime", api: "Rank",
                 ctx: "SwapContext") -> Generator:
    """Event loop of one swap handler (runs as its own sim coroutine)."""
    sim = runtime.mpi.sim
    control = runtime.control_comm
    manager = control.rank_of(runtime.manager_rank)

    def to_manager(payload) -> Generator:
        yield from api.send(manager, nbytes=protocol.CONTROL_MSG_BYTES,
                            payload=payload, comm=control)

    # The application always speaks first (its Hello); forward it before
    # entering the steady-state loop so the manager can seed its monitor.
    hello = yield ctx.to_handler.get()
    yield from to_manager(hello)

    from_app = ctx.to_handler.get()
    from_manager = api.irecv(source=manager, comm=control)
    probe_timer = sim.timeout(runtime.probe_interval)

    while True:
        yield AnyOf(sim, [from_app, from_manager, probe_timer])

        if from_app.processed:
            item = from_app.value
            yield from to_manager(item)
            if isinstance(item, protocol.Done):
                return  # application process finished; handler retires
            from_app = ctx.to_handler.get()

        if from_manager.processed:
            command = from_manager.value.payload
            ctx.from_handler.put(command)
            if isinstance(command, protocol.Shutdown):
                return
            from_manager = api.irecv(source=manager, comm=control)

        if probe_timer.processed:
            # Probe regardless of role: the manager compares all hosts on
            # the same availability-based footing (an active process's
            # self-timed iteration rate also absorbs communication stalls
            # and would bias it against idle spares).
            if not ctx.finished:
                yield from to_manager(protocol.ProbeReport(
                    rank=api.world_rank,
                    availability=api.host.availability(api.now)))
            probe_timer = sim.timeout(runtime.probe_interval)
