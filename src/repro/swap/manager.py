"""The swap manager.

"The swap manager is a possibly remote process that is responsible for
collecting information and making swapping decisions."  It runs as an
extra rank on the control communicator, feeds every measurement into a
:class:`~repro.core.history.PerformanceMonitor` whose window comes from
the policy, and at the end of each application iteration (once all active
processes have reported -- the full barrier ``MPI_Swap`` demands) applies
:func:`~repro.core.decision.decide_swaps`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Generator

from repro import obs
from repro.core.decision import decide_swaps
from repro.core.history import PerformanceMonitor
from repro.errors import SwapError
from repro.swap import protocol

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.smpi.api import Rank
    from repro.swap.runtime import SwapRuntime


@dataclass
class SwapEvent:
    """One executed exchange, for the runtime's log."""

    time: float
    iteration: int
    out_rank: int
    in_rank: int


@dataclass
class ManagerStats:
    """What the manager learned over the run (returned as its result)."""

    decisions: int = 0
    swaps: "list[SwapEvent]" = field(default_factory=list)
    rejected_epochs: int = 0
    """Decision epochs where the policy declined to swap."""
    final_active: "tuple[int, ...]" = ()

    @property
    def swap_count(self) -> int:
        return len(self.swaps)


def manager_loop(runtime: "SwapRuntime", api: "Rank") -> Generator:
    """Event loop of the swap manager (runs as world rank ``P``)."""
    control = runtime.control_comm
    policy = runtime.policy
    if runtime.use_nws_bank:
        from repro.nws.forecasting import BankMonitor
        monitor = BankMonitor()
    else:
        monitor = PerformanceMonitor(window=policy.history_window)
    stats = ManagerStats()

    active: "list[int]" = list(runtime.initial_active)
    spares: "list[int]" = [r for r in range(runtime.n_processes)
                           if r not in active]
    speeds: "dict[int, float]" = {}
    state_bytes = 0.0
    pending_reports: "dict[int, dict[int, float]]" = {}
    done: "set[int]" = set()

    def predicted_rates() -> "dict[int, float] | None":
        """Forecasts for every host, or None until all are measured."""
        return monitor.predict_many(active + spares, api.now)

    def decide_and_reply(iteration: int) -> Generator:
        nonlocal active, spares, state_bytes
        stats.decisions += 1
        rates = predicted_rates()
        moves = ()
        new_active = tuple(active)
        if rates is not None and spares:
            swap_cost = runtime.mpi.link_spec.transfer_time(state_bytes)
            chunks = {r: runtime.chunk_flops for r in active}
            decision = decide_swaps(active, spares, rates, chunks,
                                    comm_time=runtime.comm_time_estimate,
                                    swap_cost=swap_cost, params=policy)
            if obs.active() is not None:
                obs.emit_decision(api.now, source="swap-manager",
                                  iteration=iteration, policy=policy.name,
                                  decision=decision, active=active,
                                  spares=spares)
            moves = decision.moves
            if moves:
                new_active = tuple(decision.active_set_after(active))
            else:
                stats.rejected_epochs += 1
        swapped_out = {m.out_host: m.in_host for m in moves}
        swapped_in = {m.in_host: m.out_host for m in moves}
        # Replies: actives first (they are blocked at the barrier), then
        # activation commands to the chosen spares.
        for rank in active:
            local = control.rank_of(rank)
            if rank in swapped_out:
                verdict = protocol.SwapOut(iteration=iteration,
                                           partner=swapped_out[rank],
                                           active=new_active)
            else:
                verdict = protocol.Proceed(iteration=iteration,
                                           active=new_active)
            yield from api.send(local, nbytes=protocol.CONTROL_MSG_BYTES,
                                payload=verdict, comm=control)
        for rank in swapped_in:
            yield from api.send(control.rank_of(rank),
                                nbytes=protocol.CONTROL_MSG_BYTES,
                                payload=protocol.SwapIn(
                                    iteration=iteration,
                                    partner=swapped_in[rank],
                                    active=new_active),
                                comm=control)
        for move in moves:
            stats.swaps.append(SwapEvent(time=api.now, iteration=iteration,
                                         out_rank=move.out_host,
                                         in_rank=move.in_host))
            obs.emit("swap", api.now, source="swap-manager",
                     iteration=iteration, out_host=move.out_host,
                     in_host=move.in_host,
                     process_improvement=move.process_improvement,
                     app_improvement=move.app_improvement,
                     payback=move.payback)
            spares.remove(move.in_host)
            spares.append(move.out_host)
        active = list(new_active)

    while len(done) < len(active):
        message = yield from api.recv(comm=control)
        payload = message.payload
        now = api.now
        if isinstance(payload, protocol.Hello):
            speeds[payload.rank] = payload.speed
            state_bytes = max(state_bytes, payload.state_bytes)
            monitor.record(payload.rank, now,
                           payload.speed * payload.availability)
        elif isinstance(payload, protocol.ProbeReport):
            if payload.rank not in speeds:
                raise SwapError(
                    f"probe from rank {payload.rank} before its Hello")
            monitor.record(payload.rank, now,
                           speeds[payload.rank] * payload.availability)
        elif isinstance(payload, protocol.IterationReport):
            # The app-intrinsic rate triggers the decision epoch (and is
            # kept in the report log); cross-host comparison uses the
            # handlers' uniform availability probes instead, because a
            # self-timed iteration rate absorbs communication stalls and
            # would bias active processes against idle spares.
            epoch = pending_reports.setdefault(payload.iteration, {})
            epoch[payload.rank] = payload.measured_rate
            if set(epoch) >= set(active):
                del pending_reports[payload.iteration]
                yield from decide_and_reply(payload.iteration)
        elif isinstance(payload, protocol.Done):
            done.add(payload.rank)
        else:
            raise SwapError(f"manager got unexpected message {payload!r}")

    # Application finished: release every spare (and its handler).
    for rank in spares:
        yield from api.send(control.rank_of(rank),
                            nbytes=protocol.CONTROL_MSG_BYTES,
                            payload=protocol.Shutdown(), comm=control)
    stats.final_active = tuple(active)
    return stats
