"""The MPI process swapping runtime (the paper's Section 3).

This package reproduces the mechanism the policies drive:

* **over-allocation** -- ``N + M`` processes are launched, only ``N``
  compute; spares idle blocking on a receive ("an application does not
  consume more resources because of over-allocation");
* **two private communicators** -- control traffic (handlers <-> manager)
  and state transfers ride private communicators, leaving the
  application's own communicators untouched;
* **swap handlers** -- one per MPI process: forwards the application's
  per-iteration performance reports, probes CPU availability while the
  process is a spare, and relays the manager's commands;
* **the swap manager** -- a (possibly remote) process that collects
  measurements into a :class:`~repro.core.history.PerformanceMonitor`
  and applies a :class:`~repro.core.policy.PolicyParams` via
  :func:`~repro.core.decision.decide_swaps`;
* **the three-line retrofit** -- user code adds
  :meth:`~repro.swap.context.SwapContext.register` calls for its state
  and one :meth:`~repro.swap.context.SwapContext.mpi_swap` call inside
  its iteration loop (the import plays the role of ``mpi_swap.h``).

The whole runtime executes on the simulated MPI layer
(:mod:`repro.smpi`), so swaps incur real (simulated) latency, bandwidth
contention and barrier stalls rather than analytically-charged costs.
"""

from repro.swap.registry import StateRegistry
from repro.swap.context import SwapContext
from repro.swap.runtime import SwapRuntime, SwapJobResult

__all__ = [
    "StateRegistry",
    "SwapContext",
    "SwapJobResult",
    "SwapRuntime",
]
