"""Wiring of the swap runtime: processes, handlers, manager, communicators.

:class:`SwapRuntime` assembles the paper's architecture on the simulated
MPI layer:

* ``P`` application processes, one per platform host (over-allocation:
  all ``P`` are launched and pay startup; only ``N`` compute);
* one swap handler coroutine per application process;
* the swap manager as an extra rank ``P`` on a dedicated host;
* three communicators: the application's own (``app_comm``) plus the two
  private ones of the paper -- ``control_comm`` (handlers <-> manager)
  and ``state_comm`` (state-image transfers between swap partners).

:meth:`SwapRuntime.run_iterative` is the convenience driver used by the
examples: it runs a generic BSP iterative application (compute + ring
exchange per iteration) under swapping and returns a
:class:`SwapJobResult`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generator

from repro import obs
from repro.core.policy import PolicyParams, greedy_policy
from repro.errors import SwapError
from repro.load.base import ConstantLoadModel
from repro.platform.cluster import Platform
from repro.platform.host import Host, HostSpec
from repro.platform.network import LinkSpec
from repro.simkernel.engine import Simulator
from repro.simkernel.resources import Store
from repro.simkernel.rng import RngRegistry
from repro.smpi.comm import Communicator, Group
from repro.smpi.runtime import MpiJob, MpiRuntime
from repro.strategies.scheduler import initial_schedule
from repro.swap.context import SwapContext
from repro.swap.handler import handler_loop
from repro.swap.manager import ManagerStats, manager_loop


@dataclass
class SwapJobResult:
    """Outcome of one swapped application run."""

    makespan: float
    """Wall-clock simulated time from launch to full job completion."""
    startup_time: float
    manager: ManagerStats
    rank_results: "list[Any]"
    """Per-application-rank return values (None for parked spares)."""

    @property
    def swap_count(self) -> int:
        return self.manager.swap_count


class SwapRuntime:
    """One swapping-enabled MPI job on a platform."""

    def __init__(self, platform: Platform, n_active: int,
                 policy: PolicyParams | None = None,
                 chunk_flops: float = 0.0,
                 probe_interval: float = 10.0,
                 comm_time_estimate: float = 0.0,
                 use_nws_bank: bool = False,
                 sim: Simulator | None = None) -> None:
        if n_active < 1 or n_active > len(platform):
            raise SwapError(
                f"n_active must be in [1, {len(platform)}], got {n_active}")
        if probe_interval <= 0:
            raise SwapError("probe_interval must be > 0")
        self.platform = platform
        self.n_active = n_active
        self.policy = policy or greedy_policy()
        self.chunk_flops = float(chunk_flops)
        self.probe_interval = float(probe_interval)
        self.comm_time_estimate = float(comm_time_estimate)
        #: Use NWS dynamic predictor selection (:mod:`repro.nws`) for the
        #: manager's cross-host rate forecasts instead of the policy's
        #: fixed history window.
        self.use_nws_bank = bool(use_nws_bank)
        # Under an active observation session the kernel gets trace hooks
        # (event scheduled/fired, process start/stop); otherwise the
        # simulator stays unhooked and pays nothing.
        self.sim = sim or Simulator(hooks=obs.kernel_hooks())

        # The manager gets a dedicated unloaded host (it is "possibly
        # remote" and does negligible compute).
        manager_host = Host(
            HostSpec(name="swap-manager-host", speed=platform.hosts[0].speed,
                     load_model=ConstantLoadModel(0)),
            RngRegistry(0).stream("swap", "manager"), horizon=1.0)
        self.mpi = MpiRuntime(self.sim, list(platform.hosts) + [manager_host],
                              link=platform.link,
                              startup_per_process=platform.startup_per_process)
        self.n_processes = len(platform.hosts)
        self.manager_rank = self.n_processes

        app_ranks = range(self.n_processes)
        self.control_comm = Communicator(Group(range(self.n_processes + 1)),
                                         name="swap-control")
        self.state_comm = Communicator(Group(app_ranks), name="swap-state")
        self.app_comm = Communicator(Group(app_ranks), name="swap-app")

        self.initial_active: "tuple[int, ...]" = tuple(
            initial_schedule(platform, n_active, t=0.0))
        self.to_handler = {r: Store(self.sim) for r in app_ranks}
        self.to_app = {r: Store(self.sim) for r in app_ranks}
        self.contexts: "dict[int, SwapContext]" = {}

    # -- launch -------------------------------------------------------------

    def launch(self, user_main: "Callable[..., Generator]",
               *args: Any) -> MpiJob:
        """Launch the job: ``user_main(rank, ctx, *args)`` on every
        application rank, plus handlers and the manager."""

        def app_main(rank, *inner_args) -> Generator:
            ctx = SwapContext(self, rank)
            self.contexts[rank.world_rank] = ctx
            self.sim.process(handler_loop(self, rank, ctx),
                             name=f"handler{rank.world_rank}")
            result = yield from user_main(rank, ctx, *inner_args)
            return result

        def manager_main(rank, *inner_args) -> Generator:
            del inner_args
            stats = yield from manager_loop(self, rank)
            return stats

        mains = [app_main] * self.n_processes + [manager_main]
        return self.mpi.launch(mains, *args)

    # -- convenience driver ---------------------------------------------------

    def run_iterative(self, iterations: int, exchange_bytes: float = 0.0,
                      state_bytes: float = 0.0,
                      body: "Callable[[int, int, Any], Any] | None" = None,
                      initial_state: "Callable[[int], Any] | None" = None,
                      ) -> SwapJobResult:
        """Run a generic swapped BSP iterative application to completion.

        Each iteration an active process computes ``self.chunk_flops``,
        optionally applies ``body(rank, iteration, state)``, and takes
        part in a ring exchange of ``exchange_bytes``.  Swapping follows
        the runtime's policy.
        """
        if iterations < 1:
            raise SwapError(f"need >= 1 iteration, got {iterations}")
        if self.chunk_flops <= 0:
            raise SwapError("run_iterative needs chunk_flops > 0")

        def worker(rank, ctx: SwapContext) -> Generator:
            ctx.register("app-state", state_bytes)
            iteration = 0
            state = initial_state(rank.world_rank) if initial_state else None
            while True:
                if ctx.role == "active" and iteration >= iterations:
                    yield from ctx.finish()
                    return state
                iteration, state = yield from ctx.mpi_swap(iteration, state)
                if iteration is None:
                    return None  # spare at shutdown
                yield from rank.compute(self.chunk_flops)
                if body is not None:
                    state = body(rank.world_rank, iteration, state)
                yield from ctx.exchange(exchange_bytes)
                iteration += 1

        job = self.launch(worker)
        results = job.run_to_completion()
        manager_stats = results[self.manager_rank]
        return SwapJobResult(makespan=self.sim.now,
                             startup_time=job.startup_time,
                             manager=manager_stats,
                             rank_results=results[:self.n_processes])
