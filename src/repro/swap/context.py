"""The application-facing swap API: the "three lines of source code".

A :class:`SwapContext` is what a retrofitted iterative application touches:

1. the import of this module (the paper's ``#include "mpi_swap.h"``);
2. :meth:`SwapContext.register` calls for the state to move on a swap
   (the paper's ``swap_register()``);
3. one :meth:`SwapContext.mpi_swap` call inside the iteration loop.

``mpi_swap`` hides the whole choreography: performance reporting, the
manager's verdict, state transfer to/from a partner process, and the
role flip between *active* (computing) and *spare* (idle, blocking on a
receive -- consuming no simulated CPU).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator

from repro.errors import SwapError
from repro.swap import protocol
from repro.swap.registry import StateRegistry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.smpi.api import Rank
    from repro.swap.runtime import SwapRuntime

#: Tag used for state-image transfers on the private state communicator.
STATE_TAG = 7

#: Tag base for the runtime-managed exchange phases.
EXCHANGE_TAG_BASE = 100


class SwapContext:
    """Per-process handle on the swap runtime."""

    def __init__(self, runtime: "SwapRuntime", rank: "Rank") -> None:
        self.runtime = runtime
        self.rank = rank
        self.registry = StateRegistry()
        self.role = ("active" if rank.world_rank in runtime.initial_active
                     else "spare")
        #: Current active world ranks, as last announced by the manager.
        self.current_active: "tuple[int, ...]" = tuple(runtime.initial_active)
        self.to_handler = runtime.to_handler[rank.world_rank]
        self.from_handler = runtime.to_app[rank.world_rank]
        self.swaps_in = 0
        self.swaps_out = 0
        self.finished = False
        self._hello_sent = False
        self._epoch_start: float | None = None
        self._iteration = 0

    # -- the three-line API ----------------------------------------------

    def register(self, name: str, nbytes: float) -> None:
        """Register a state block to be moved on a swap (local, instant)."""
        if self._hello_sent:
            raise SwapError(
                "state must be registered before the first mpi_swap() call")
        self.registry.register(name, nbytes)

    def mpi_swap(self, iteration: int, state: Any) -> Generator:
        """The swap point at the top of the iteration loop.

        Returns ``(iteration, state)`` -- usually unchanged; after being
        swapped in, the *partner's* iteration counter and state; and
        ``(None, None)`` when the application has finished and this
        (spare) process should exit.
        """
        self._ensure_hello()
        if self.role == "active":
            rate = self._measured_rate(iteration)
            self.to_handler.put(protocol.IterationReport(
                rank=self.rank.world_rank, iteration=iteration,
                measured_rate=rate))
            verdict = yield self.from_handler.get()
            if isinstance(verdict, protocol.Proceed):
                self.current_active = verdict.active
                self._epoch_start = self.rank.now
                self._iteration = iteration
                return iteration, state
            if not isinstance(verdict, protocol.SwapOut):
                raise SwapError(f"active process got unexpected {verdict!r}")
            # Retire: push the registered state image to the incoming spare.
            self.current_active = verdict.active
            self.role = "spare"
            self.swaps_out += 1
            partner_local = self.runtime.state_comm.rank_of(verdict.partner)
            yield from self.rank.send(partner_local,
                                      nbytes=self.registry.total_bytes,
                                      payload=(iteration, state),
                                      tag=STATE_TAG,
                                      comm=self.runtime.state_comm)
        # Spare: idle until swapped in or shut down.  This is the paper's
        # over-allocation idle state ("blocking on an I/O call").
        command = yield self.from_handler.get()
        if isinstance(command, protocol.Shutdown):
            self.finished = True
            return None, None
        if not isinstance(command, protocol.SwapIn):
            raise SwapError(f"spare process got unexpected {command!r}")
        partner_local = self.runtime.state_comm.rank_of(command.partner)
        message = yield from self.rank.recv(source=partner_local,
                                            tag=STATE_TAG,
                                            comm=self.runtime.state_comm)
        self.role = "active"
        self.swaps_in += 1
        self.current_active = command.active
        self._epoch_start = self.rank.now
        new_iteration, new_state = message.payload
        self._iteration = new_iteration
        return new_iteration, new_state

    def finish(self) -> Generator:
        """Tell the manager this process completed its final iteration."""
        if self.role != "active":
            raise SwapError("only an active process can finish the run")
        self._ensure_hello()
        self.finished = True
        self.to_handler.put(protocol.Done(rank=self.rank.world_rank))
        return
        yield  # pragma: no cover - makes this a generator

    # -- runtime-managed communication ------------------------------------

    def exchange(self, nbytes: float, payload: Any = None,
                 iteration: int | None = None) -> Generator:
        """One iteration's communication phase among the current actives.

        A synchronizing ring: each active sends ``nbytes`` (carrying
        ``payload``) to its successor in the manager-announced active
        list and receives -- and returns -- its predecessor's payload.
        Spares take no part (and must not call this).

        Message tags derive from the *iteration number* (defaulting to
        the one the last ``mpi_swap`` returned) so that a freshly
        swapped-in process matches the survivors' traffic.
        """
        if self.role != "active":
            raise SwapError("spare processes do not exchange data")
        members = list(self.current_active)
        if len(members) <= 1:
            return payload
        me = members.index(self.rank.world_rank)
        succ = members[(me + 1) % len(members)]
        pred = members[(me - 1) % len(members)]
        if iteration is None:
            iteration = self._iteration
        tag = EXCHANGE_TAG_BASE + (iteration % (1 << 16))
        comm = self.runtime.app_comm
        send_done = self.rank.isend(comm.rank_of(succ), nbytes=nbytes,
                                    payload=payload, tag=tag, comm=comm)
        message = yield from self.rank.recv(source=comm.rank_of(pred),
                                            tag=tag, comm=comm)
        yield send_done
        return message.payload

    # -- internals ----------------------------------------------------------

    def _ensure_hello(self) -> None:
        if self._hello_sent:
            return
        now = self.rank.now
        self.to_handler.put(protocol.Hello(
            rank=self.rank.world_rank,
            speed=self.rank.host.speed,
            state_bytes=self.registry.total_bytes,
            availability=self.rank.host.availability(now)))
        self._hello_sent = True

    def _measured_rate(self, iteration: int) -> float:
        """Observed flop/s since the last swap point (iteration time based).

        Before the first iteration there is nothing to measure; report the
        instantaneous availability-scaled benchmark speed instead.
        """
        now = self.rank.now
        if self._epoch_start is None or now <= self._epoch_start:
            return self.rank.host.speed * self.rank.host.availability(now)
        elapsed = now - self._epoch_start
        return self.runtime.chunk_flops / elapsed
