"""Deterministic fault injection and recovery (:mod:`repro.faults`).

See :mod:`repro.faults.plan` for the fault model/plan layer and
:mod:`repro.faults.recovery` for the strategy-shared recovery mechanics.
``docs/ROBUSTNESS.md`` documents the fault model, the per-strategy
recovery semantics, and the determinism contract.
"""

from repro.faults.plan import PLAN_VERSION, FaultModel, FaultPlan
from repro.faults.recovery import (TransferSequencer, alive,
                                   attempt_transfer, compute_finish,
                                   promote_spares)

__all__ = [
    "PLAN_VERSION",
    "FaultModel",
    "FaultPlan",
    "TransferSequencer",
    "alive",
    "attempt_transfer",
    "compute_finish",
    "promote_spares",
]
