"""Deterministic fault plans: revocations, transfer failures, outages.

The paper's Section 2 motivates over-allocation with Condor-style
*eviction*: a workstation owner reclaims their machine and the processes
on it are gone.  :class:`FaultModel` describes a stochastic fault
environment; :class:`FaultPlan` is one concrete realization of it, built
from named RNG streams under the same reproducibility contract as
:mod:`repro.load`:

* every draw comes from a :class:`~repro.simkernel.rng.RngRegistry`
  stream, so the same ``(seed, key path)`` yields the same plan;
* plans are *lazily extensible* -- intervals materialize on demand as
  queries advance, and the realized sequence depends only on the stream,
  never on which strategy queried first (draws are consumed in time
  order regardless of query order);
* one plan is shared by every strategy in a comparison, so all
  techniques face the *same* revocations, the same transfer-failure
  pattern (keyed by per-run attempt sequence numbers, not by consumption
  order), and the same store outages.

Three fault classes are modelled:

* **Host revocations** -- per-host alternating up/down renewal process
  (exponential uptime at ``revocation_rate`` per host-hour, exponential
  downtime).  A revoked host computes nothing until it returns.
* **Swap-transfer failures** -- each state-image transfer attempt fails
  independently with ``transfer_failure_prob``; failures are transient
  (retry gating is the recovering strategy's job).
* **Checkpoint-store outages** -- a global alternating up/down process
  during which the central checkpoint location is unreachable.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from dataclasses import dataclass

from repro.errors import FaultError
from repro.simkernel.rng import RngRegistry, derive_seed
from repro.units import HOUR

#: Bump when the plan-generation algorithm changes.  Participates in
#: experiment fingerprints (see ``ExperimentSpec.context``) so cached
#: sweep cells built under an older fault realization are invalidated.
PLAN_VERSION = 1


class _IntervalStream:
    """Lazily materialized alternating up/down intervals from one stream.

    Down intervals ``[start, end)`` are generated in time order: an
    exponential uptime gap, then an exponential (floored) downtime.
    ``known_until`` is the time up to which the realization is decided;
    queries past it trigger more draws.  Because draws are strictly
    sequential, the realized intervals are a pure function of the stream
    -- independent of how many queries materialized them.
    """

    __slots__ = ("rng", "mean_up", "mean_down", "min_down",
                 "starts", "ends", "known_until")

    def __init__(self, rng, mean_up: float, mean_down: float,
                 min_down: float) -> None:
        self.rng = rng
        self.mean_up = float(mean_up)
        self.mean_down = float(mean_down)
        self.min_down = float(min_down)
        self.starts: "list[float]" = []
        self.ends: "list[float]" = []
        self.known_until = 0.0

    def _ensure(self, t: float) -> None:
        while self.known_until < t:
            gap = float(self.rng.exponential(self.mean_up))
            start = self.known_until + gap
            down = max(self.min_down, float(self.rng.exponential(self.mean_down)))
            self.starts.append(start)
            self.ends.append(start + down)
            self.known_until = start + down

    def down_at(self, t: float) -> bool:
        self._ensure(t)
        i = bisect_right(self.starts, t) - 1
        return i >= 0 and t < self.ends[i]

    def end_of_down(self, t: float) -> float:
        """End of the down interval covering ``t`` (``t`` if up)."""
        self._ensure(t)
        i = bisect_right(self.starts, t) - 1
        if i >= 0 and t < self.ends[i]:
            return self.ends[i]
        return t

    def next_start(self, t0: float, t1: float) -> "float | None":
        """First down-interval start in ``(t0, t1]``, or ``None``."""
        self._ensure(t1)
        i = bisect_right(self.starts, t0)
        if i < len(self.starts) and self.starts[i] <= t1:
            return self.starts[i]
        return None

    def down_seconds(self, t0: float, t1: float) -> float:
        """Total down time overlapping ``[t0, t1]``."""
        self._ensure(t1)
        total = 0.0
        i = max(bisect_right(self.starts, t0) - 1, 0)
        while i < len(self.starts) and self.starts[i] < t1:
            total += max(0.0, min(self.ends[i], t1) - max(self.starts[i], t0))
            i += 1
        return total


@dataclass(frozen=True)
class FaultModel:
    """Stochastic description of a fault environment.

    Parameters
    ----------
    revocation_rate:
        Mean host revocations per host-hour (0 disables revocations).
    mean_downtime:
        Mean revocation duration in seconds (exponential, floored at
        ``min_downtime``).
    min_downtime:
        Floor on revocation durations (avoids zero-length revocations).
    store_outage_rate:
        Mean checkpoint-store outages per hour (0 disables outages).
    mean_store_outage:
        Mean store outage duration in seconds.
    transfer_failure_prob:
        Per-attempt probability that a state-image transfer fails.
    max_transfer_retries:
        Retries granted after a failed transfer attempt before the
        recovering strategy must give up (declare a stall).
    """

    revocation_rate: float = 0.0
    mean_downtime: float = 300.0
    min_downtime: float = 1.0
    store_outage_rate: float = 0.0
    mean_store_outage: float = 120.0
    transfer_failure_prob: float = 0.0
    max_transfer_retries: int = 3

    def __post_init__(self) -> None:
        if self.revocation_rate < 0:
            raise FaultError(f"negative revocation_rate {self.revocation_rate}")
        if self.mean_downtime <= 0 or self.min_downtime < 0:
            raise FaultError("revocation downtimes must be positive")
        if self.store_outage_rate < 0:
            raise FaultError(f"negative store_outage_rate {self.store_outage_rate}")
        if self.mean_store_outage <= 0:
            raise FaultError("mean_store_outage must be positive")
        if not 0.0 <= self.transfer_failure_prob < 1.0:
            raise FaultError(
                f"transfer_failure_prob must be in [0, 1), got "
                f"{self.transfer_failure_prob}")
        if self.max_transfer_retries < 0:
            raise FaultError("max_transfer_retries must be >= 0")

    def fingerprint(self) -> str:
        """Content address of this model (algorithm version included)."""
        payload = "|".join([
            "faultmodel", str(PLAN_VERSION),
            repr(float(self.revocation_rate)),
            repr(float(self.mean_downtime)),
            repr(float(self.min_downtime)),
            repr(float(self.store_outage_rate)),
            repr(float(self.mean_store_outage)),
            repr(float(self.transfer_failure_prob)),
            str(int(self.max_transfer_retries)),
        ])
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    def build(self, registry: RngRegistry, n_hosts: int) -> "FaultPlan":
        """Realize a plan for ``n_hosts`` from ``registry``'s streams."""
        if n_hosts < 1:
            raise FaultError(f"need at least one host, got {n_hosts}")
        return FaultPlan(self, registry, n_hosts)

    def describe(self) -> str:
        return (f"faults(rev={self.revocation_rate}/host-h, "
                f"down~{self.mean_downtime}s, "
                f"xfail={self.transfer_failure_prob}, "
                f"store={self.store_outage_rate}/h)")


class FaultPlan:
    """One realized fault schedule, shared by all strategies in a cell.

    Host revocation intervals are half-open ``[start, end)``: a host is
    revoked at its onset and back at its return time.  All queries are
    exact interval walks -- no time stepping.
    """

    def __init__(self, model: FaultModel, registry: RngRegistry,
                 n_hosts: int) -> None:
        self.model = model
        self.n_hosts = int(n_hosts)
        self._revocations: "dict[int, _IntervalStream]" = {}
        if model.revocation_rate > 0:
            mean_up = HOUR / model.revocation_rate
            for h in range(n_hosts):
                self._revocations[h] = _IntervalStream(
                    registry.stream("revocation", h), mean_up,
                    model.mean_downtime, model.min_downtime)
        self._store: "_IntervalStream | None" = None
        if model.store_outage_rate > 0:
            self._store = _IntervalStream(
                registry.stream("store"), HOUR / model.store_outage_rate,
                model.mean_store_outage, model.min_downtime)
        self._transfer_seed = registry.seed_for("transfer")

    # -- host revocations ------------------------------------------------

    @property
    def max_transfer_retries(self) -> int:
        return self.model.max_transfer_retries

    def is_revoked(self, host: int, t: float) -> bool:
        """Whether ``host`` is revoked (owner-reclaimed) at time ``t``."""
        stream = self._revocations.get(host)
        return stream is not None and stream.down_at(t)

    def return_time(self, host: int, t: float) -> float:
        """When ``host`` comes back if revoked at ``t`` (else ``t``)."""
        stream = self._revocations.get(host)
        return t if stream is None else stream.end_of_down(t)

    def revoked_at(self, t: float, hosts) -> "list[int]":
        """The subset of ``hosts`` revoked at ``t`` (platform order)."""
        return [h for h in hosts if self.is_revoked(h, t)]

    def next_onset(self, host: int, t0: float, t1: float) -> "float | None":
        """First revocation onset of ``host`` in ``(t0, t1]``, if any."""
        stream = self._revocations.get(host)
        return None if stream is None else stream.next_start(t0, t1)

    def earliest_onset(self, hosts, t0: float,
                       t1: float) -> "tuple[float, list[int]] | None":
        """Earliest revocation onset among ``hosts`` in ``(t0, t1]``.

        Returns ``(onset_time, hosts revoked at exactly that time)`` or
        ``None``.  Multiple hosts share an entry only on an exact tie.
        """
        best: "float | None" = None
        victims: "list[int]" = []
        for h in hosts:
            onset = self.next_onset(h, t0, t1)
            if onset is None:
                continue
            if best is None or onset < best:
                best, victims = onset, [h]
            elif onset == best:
                victims.append(h)
        return None if best is None else (best, victims)

    def revocations_in(self, host: int, t0: float,
                       t1: float) -> "list[tuple[float, float]]":
        """Revocation intervals of ``host`` overlapping ``[t0, t1]``."""
        if t1 < t0:
            raise FaultError(f"empty window [{t0}, {t1}]")
        stream = self._revocations.get(host)
        if stream is None:
            return []
        stream._ensure(t1)
        out = []
        i = max(bisect_right(stream.starts, t0) - 1, 0)
        while i < len(stream.starts) and stream.starts[i] <= t1:
            if stream.ends[i] >= t0:
                out.append((stream.starts[i], stream.ends[i]))
            i += 1
        return out

    def revoked_seconds(self, host: int, t0: float, t1: float) -> float:
        """Total time ``host`` spends revoked within ``[t0, t1]``."""
        if t1 < t0:
            raise FaultError(f"empty window [{t0}, {t1}]")
        stream = self._revocations.get(host)
        return 0.0 if stream is None else stream.down_seconds(t0, t1)

    def advance_paused(self, host: int, trace, t0: float,
                       demand: float) -> float:
        """Finish time of ``demand`` dedicated-CPU-seconds on ``host``,
        making zero progress during the host's revocation windows.

        ``trace`` is the host's :class:`~repro.load.base.LoadTrace`;
        outside revocations the work advances exactly as
        :meth:`LoadTrace.advance_work` would.
        """
        stream = self._revocations.get(host)
        if stream is None:
            return trace.advance_work(t0, demand)
        if demand < 0:
            raise FaultError(f"negative compute demand {demand}")
        if demand == 0:
            return t0
        t = float(t0)
        remaining = float(demand)
        while True:
            if stream.down_at(t):
                t = stream.end_of_down(t)
            finish = trace.advance_work(t, remaining)
            onset = stream.next_start(t, finish)
            if onset is None or finish <= onset:
                return finish
            remaining -= trace.integrate_availability(t, onset)
            if remaining < 0.0:  # pragma: no cover - float safety
                remaining = 0.0
            t = onset

    # -- checkpoint store ------------------------------------------------

    def store_available(self, t: float) -> bool:
        """Whether the central checkpoint location is reachable at ``t``."""
        return self._store is None or not self._store.down_at(t)

    def store_ready_time(self, t: float) -> float:
        """End of the store outage covering ``t`` (``t`` if reachable)."""
        return t if self._store is None else self._store.end_of_down(t)

    # -- transfer failures -----------------------------------------------

    def transfer_fails(self, seq: int) -> bool:
        """Whether transfer attempt number ``seq`` fails.

        Keyed by the caller's per-run attempt sequence number through a
        hash (not by RNG consumption order), so the failure pattern a
        strategy observes depends only on ``(seed, seq)`` -- the same
        order-independence contract as the rest of the registry.
        """
        p = self.model.transfer_failure_prob
        if p <= 0.0:
            return False
        draw = derive_seed(self._transfer_seed, "attempt", int(seq))
        return (draw >> 11) / float(1 << 53) < p

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<FaultPlan hosts={self.n_hosts} {self.model.describe()}>"
