"""Recovery helpers shared by the fault-aware strategy paths.

Each strategy owns its recovery *semantics* (promote a spare, restart
from checkpoint, repartition, stall); this module holds the mechanics
they share: fault-aware compute advancement, retry gating for transient
transfer failures, and the spare-promotion pairing that mirrors
``decide_swaps``'s candidate ordering.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.plan import FaultPlan
    from repro.platform.cluster import Platform


class TransferSequencer:
    """Per-run counter of state-image transfer attempts.

    Attempt numbers key :meth:`FaultPlan.transfer_fails`, so each
    strategy run observes a deterministic failure pattern that depends
    only on the seed and its own attempt count -- never on what other
    strategies in the comparison did.
    """

    __slots__ = ("seq",)

    def __init__(self) -> None:
        self.seq = 0

    def next(self) -> int:
        seq = self.seq
        self.seq += 1
        return seq


def attempt_transfer(plan: "FaultPlan", sequencer: TransferSequencer,
                     cost: float) -> "tuple[float, bool, int]":
    """Retry-gated transfer of one state image over the shared link.

    Every attempt -- including a failed one, which times out only after
    the full transfer duration -- costs ``cost`` seconds.  Gives up
    after ``plan.max_transfer_retries`` retries beyond the first try.

    Returns ``(elapsed_seconds, succeeded, attempts_made)``.
    """
    attempts = 0
    elapsed = 0.0
    while True:
        attempts += 1
        elapsed += cost
        if not plan.transfer_fails(sequencer.next()):
            return elapsed, True, attempts
        if attempts > plan.max_transfer_retries:
            return elapsed, False, attempts


def promote_spares(revoked: Sequence[int], spares: Sequence[int],
                   rates: Mapping[int, float],
                   ) -> "tuple[list[tuple[int, int]], list[int]]":
    """Pair each revoked active host with the fastest surviving spare.

    Candidates are ranked exactly like ``decide_swaps`` ranks swap-in
    candidates (predicted rate descending, platform index ascending);
    revoked hosts are filled lowest index first.  Returns
    ``(promotions, unfilled)`` where ``promotions`` is a list of
    ``(out_host, in_host)`` pairs and ``unfilled`` lists revoked hosts
    no spare was left for.
    """
    order = iter(sorted(spares, key=lambda h: (-rates.get(h, 0.0), h)))
    promotions: "list[tuple[int, int]]" = []
    unfilled: "list[int]" = []
    for out in sorted(revoked):
        in_host = next(order, None)
        if in_host is None:
            unfilled.append(out)
        else:
            promotions.append((out, in_host))
    return promotions, unfilled


def compute_finish(platform: "Platform", host: int, start: float,
                   flops: float) -> float:
    """Fault-aware :meth:`Host.compute_finish`: revoked hosts pause.

    Identical to the plain host walk when the platform carries no fault
    plan (or the host has no revocations), so fault-free paths stay
    bit-for-bit unchanged.
    """
    h = platform.host(host)
    plan = platform.faults
    if plan is None:
        return h.compute_finish(start, flops)
    return plan.advance_paused(host, h.trace, start, flops / h.speed)


def alive(plan: "FaultPlan | None", hosts: Sequence[int],
          t: float) -> "list[int]":
    """The subset of ``hosts`` not revoked at ``t`` (platform order)."""
    if plan is None:
        return list(hosts)
    return [h for h in hosts if not plan.is_revoked(h, t)]
