"""Measurement sensors: periodic probes of hosts and links.

A sensor turns the simulation's ground truth (load traces, link state)
into the *sampled* view a real monitoring system would have -- the swap
manager never sees a trace, only probe series.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ReproError
from repro.platform.host import Host
from repro.platform.network import LinkSpec


@dataclass
class MeasurementSeries:
    """A bounded timestamped series of sensor readings."""

    name: str
    max_length: int = 1024
    times: "list[float]" = field(default_factory=list)
    values: "list[float]" = field(default_factory=list)

    def append(self, t: float, value: float) -> None:
        if self.times and t < self.times[-1]:
            raise ReproError(
                f"measurement at t={t} is older than the newest sample")
        self.times.append(float(t))
        self.values.append(float(value))
        if len(self.times) > self.max_length:
            del self.times[0]
            del self.values[0]

    def __len__(self) -> int:
        return len(self.times)

    @property
    def last(self) -> float:
        if not self.values:
            raise ReproError(f"series {self.name!r} is empty")
        return self.values[-1]

    def window(self, t0: float, t1: float) -> "list[tuple[float, float]]":
        """Samples with ``t0 <= t <= t1``."""
        return [(t, v) for t, v in zip(self.times, self.values)
                if t0 <= t <= t1]


class CpuSensor:
    """Periodic CPU-availability probe of one host (the NWS CPU sensor).

    ``sample_range(t0, t1)`` materializes every probe in a window -- the
    deterministic batch form used by offline studies; the DES swap
    handlers perform the same measurement live.
    """

    def __init__(self, host: Host, period: float = 10.0) -> None:
        if period <= 0:
            raise ReproError(f"probe period must be > 0, got {period}")
        self.host = host
        self.period = float(period)
        self.series = MeasurementSeries(name=f"cpu:{host.name}")

    def probe(self, t: float) -> float:
        """Take one availability reading at ``t`` and record it."""
        value = self.host.availability(t)
        self.series.append(t, value)
        return value

    def sample_range(self, t0: float, t1: float) -> MeasurementSeries:
        """Probe every ``period`` seconds across ``[t0, t1]``."""
        t = t0
        while t <= t1:
            self.probe(t)
            t += self.period
        return self.series


class BandwidthSensor:
    """Link-bandwidth probe: times a fixed-size transfer (NWS style).

    Against the analytic :class:`LinkSpec` the reading reflects the probe
    overhead (latency amortization); against a live
    :class:`~repro.platform.network.FairShareLink` it additionally sees
    contention from concurrent flows.
    """

    def __init__(self, link: LinkSpec, probe_bytes: float = 64_000.0) -> None:
        if probe_bytes <= 0:
            raise ReproError(f"probe size must be > 0, got {probe_bytes}")
        self.link = link
        self.probe_bytes = float(probe_bytes)
        self.series = MeasurementSeries(name="bandwidth")

    def probe(self, t: float, concurrent_flows: int = 0) -> float:
        """One effective-bandwidth reading in bytes/s at time ``t``."""
        share = self.link.bandwidth / (1 + max(concurrent_flows, 0))
        duration = self.link.latency + self.probe_bytes / share
        value = self.probe_bytes / duration
        self.series.append(t, value)
        return value
