"""Online dynamic predictor selection (the NWS forecasting design).

A :class:`ForecasterBank` holds several cheap forecasting methods and
races them *online*: each new measurement is first predicted by every
method (scoring its running mean absolute error), then folded into every
method's state.  Queries return the prediction of the currently most
accurate method plus that method's error estimate -- exactly the shape of
answer NWS gives its clients ("dynamically forecasting network
performance", Wolski 1998).

Unlike :class:`repro.core.history.AdaptiveForecaster` (which replays a
window on every call), the bank is O(#methods) per update and never
re-reads history, so it scales to long monitoring sessions.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.errors import PolicyError


class _Method:
    """One online forecasting method inside a bank."""

    name = "method"

    def predict(self) -> float:
        raise NotImplementedError

    def update(self, value: float) -> None:
        raise NotImplementedError

    @property
    def ready(self) -> bool:
        raise NotImplementedError


class _LastValue(_Method):
    name = "last"

    def __init__(self) -> None:
        self._value: float | None = None

    def predict(self) -> float:
        return float(self._value)

    def update(self, value: float) -> None:
        self._value = value

    @property
    def ready(self) -> bool:
        return self._value is not None


class _RunningMean(_Method):
    name = "running-mean"

    def __init__(self) -> None:
        self._sum = 0.0
        self._count = 0

    def predict(self) -> float:
        return self._sum / self._count

    def update(self, value: float) -> None:
        self._sum += value
        self._count += 1

    @property
    def ready(self) -> bool:
        return self._count > 0


class _SlidingMedian(_Method):
    def __init__(self, length: int = 16) -> None:
        self.name = f"median-{length}"
        self._window: deque = deque(maxlen=length)

    def predict(self) -> float:
        return float(np.median(list(self._window)))

    def update(self, value: float) -> None:
        self._window.append(value)

    @property
    def ready(self) -> bool:
        return len(self._window) > 0


class _SlidingMean(_Method):
    def __init__(self, length: int = 16) -> None:
        self.name = f"mean-{length}"
        self._window: deque = deque(maxlen=length)

    def predict(self) -> float:
        return float(np.mean(list(self._window)))

    def update(self, value: float) -> None:
        self._window.append(value)

    @property
    def ready(self) -> bool:
        return len(self._window) > 0


class _Ewma(_Method):
    def __init__(self, alpha: float) -> None:
        self.name = f"ewma-{alpha:g}"
        self.alpha = alpha
        self._estimate: float | None = None

    def predict(self) -> float:
        return float(self._estimate)

    def update(self, value: float) -> None:
        if self._estimate is None:
            self._estimate = value
        else:
            self._estimate = (self.alpha * value
                              + (1.0 - self.alpha) * self._estimate)

    @property
    def ready(self) -> bool:
        return self._estimate is not None


def default_methods() -> "list[_Method]":
    """The bank's stock method set (an NWS-like mix)."""
    return [_LastValue(), _RunningMean(), _SlidingMean(8), _SlidingMean(32),
            _SlidingMedian(8), _SlidingMedian(32), _Ewma(0.25), _Ewma(0.6)]


@dataclass(frozen=True)
class Forecast:
    """A prediction with provenance and an error estimate."""

    value: float
    error: float
    """The winning method's running mean absolute error."""
    method: str
    """Name of the method that produced the value."""
    n_samples: int


class ForecasterBank:
    """Races online methods; answers with the current winner."""

    def __init__(self, methods: "list[_Method] | None" = None) -> None:
        self.methods = methods if methods is not None else default_methods()
        if not self.methods:
            raise PolicyError("bank needs at least one method")
        self._abs_error = [0.0] * len(self.methods)
        self._scored = [0] * len(self.methods)
        self._n = 0

    def update(self, value: float) -> None:
        """Score every ready method against ``value``, then absorb it."""
        for i, method in enumerate(self.methods):
            if method.ready:
                self._abs_error[i] += abs(method.predict() - value)
                self._scored[i] += 1
            method.update(value)
        self._n += 1

    def mae(self, index: int) -> float:
        """Running mean absolute error of one method (inf if unscored)."""
        if self._scored[index] == 0:
            return float("inf")
        return self._abs_error[index] / self._scored[index]

    def leaderboard(self) -> "list[tuple[str, float]]":
        """(method, MAE) pairs, most accurate first."""
        board = [(m.name, self.mae(i)) for i, m in enumerate(self.methods)]
        return sorted(board, key=lambda item: item[1])

    def forecast(self) -> Forecast:
        """Prediction of the currently most accurate method."""
        if self._n == 0:
            raise PolicyError("no measurements yet")
        ready = [i for i, m in enumerate(self.methods) if m.ready]
        best = min(ready, key=self.mae)
        return Forecast(value=self.methods[best].predict(),
                        error=0.0 if self.mae(best) == float("inf")
                        else self.mae(best),
                        method=self.methods[best].name,
                        n_samples=self._n)


class BankMonitor:
    """Per-resource :class:`ForecasterBank`s (drop-in predictor).

    The same role as :class:`repro.core.history.PerformanceMonitor`, but
    with NWS dynamic predictor selection per monitored resource.
    """

    def __init__(self) -> None:
        self._banks: dict = {}

    def record(self, resource, t: float, value: float) -> None:
        del t  # banks are order-based; timestamps live in the sensors
        bank = self._banks.get(resource)
        if bank is None:
            bank = self._banks[resource] = ForecasterBank()
        bank.update(value)

    def predict(self, resource, now: float = 0.0) -> float:
        del now
        bank = self._banks.get(resource)
        if bank is None:
            raise PolicyError(f"no measurements recorded for {resource!r}")
        return bank.forecast().value

    def predict_many(self, resources, now: float = 0.0) -> "dict | None":
        """Forecasts for every resource, or None if any is unmeasured
        (interface parity with ``PerformanceMonitor.predict_many``)."""
        del now
        banks = self._banks
        rates = {}
        for r in resources:
            bank = banks.get(r)
            if bank is None or bank._n == 0:
                return None
            rates[r] = bank.forecast().value
        return rates

    def forecast(self, resource) -> Forecast:
        bank = self._banks.get(resource)
        if bank is None:
            raise PolicyError(f"no measurements recorded for {resource!r}")
        return bank.forecast()

    def known_resources(self) -> list:
        return list(self._banks)
