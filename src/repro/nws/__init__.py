"""A Network-Weather-Service-style measurement and forecasting substrate.

The paper's runtime "use[s] application and environmental measurements
(e.g. via the NWS, Autopilot, or MDS) to improve application
performance".  This package reproduces the relevant NWS ideas:

* **sensors** (:mod:`repro.nws.sensors`) -- periodic CPU-availability and
  link-bandwidth probes producing timestamped measurement series;
* **dynamic predictor selection** (:mod:`repro.nws.forecasting`) -- a
  bank of simple forecasters raced against each other *online*: every new
  measurement first scores each method's one-step-ahead prediction, then
  updates it; queries are answered by the currently most accurate method
  together with an error estimate (NWS's headline design).
"""

from repro.nws.forecasting import BankMonitor, Forecast, ForecasterBank
from repro.nws.sensors import BandwidthSensor, CpuSensor, MeasurementSeries

__all__ = [
    "BandwidthSensor",
    "BankMonitor",
    "CpuSensor",
    "Forecast",
    "ForecasterBank",
    "MeasurementSeries",
]
