"""Performance history and forecasting.

Section 4.1: "The amount of performance history used to predict processor
performance can be tuned.  Increasing the amount of history reduces the
chance of being fooled by a transient load event, but can cause the
application to miss good swapping opportunities.  This parameter enables
swap frequency damping."

:class:`PerformanceHistory` keeps timestamped samples inside a sliding
window.  Forecasters turn a history into a prediction; beyond the paper's
windowed mean we provide median, EWMA, last-value and an adaptive
selector, in the spirit of the Network Weather Service forecaster bank the
paper cites for its measurement infrastructure.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterable, Tuple

import numpy as np

from repro.errors import PolicyError


class PerformanceHistory:
    """Timestamped samples inside a sliding time window.

    Parameters
    ----------
    window:
        Window length in seconds.  ``0`` means "no history": only the most
        recent sample is retained (the greedy policy's configuration).
    """

    def __init__(self, window: float = 0.0) -> None:
        if window < 0:
            raise PolicyError(f"negative history window {window}")
        self.window = float(window)
        self._samples: Deque[Tuple[float, float]] = deque()

    def __len__(self) -> int:
        return len(self._samples)

    def record(self, t: float, value: float) -> None:
        """Add a sample; timestamps must be non-decreasing."""
        if self._samples and t < self._samples[-1][0]:
            raise PolicyError(
                f"sample at t={t} is older than the newest sample "
                f"(t={self._samples[-1][0]})")
        self._samples.append((float(t), float(value)))
        self._trim(t)

    def _trim(self, now: float) -> None:
        cutoff = now - self.window
        # Always keep at least the newest sample.
        while len(self._samples) > 1 and self._samples[0][0] < cutoff:
            self._samples.popleft()

    def samples(self, now: float | None = None) -> "list[tuple[float, float]]":
        """Samples currently inside the window ending at ``now``."""
        if now is not None:
            self._trim(now)
        return list(self._samples)

    def values(self, now: float | None = None) -> "list[float]":
        return [v for _t, v in self.samples(now)]

    @property
    def last(self) -> float:
        """Most recent value; raises if empty."""
        if not self._samples:
            raise PolicyError("history is empty")
        return self._samples[-1][1]


class Forecaster:
    """Turns a history into a single predicted value."""

    name = "forecaster"

    def predict(self, history: PerformanceHistory, now: float) -> float:
        raise NotImplementedError


class LastValueForecaster(Forecaster):
    """Predict the most recent measurement (no damping)."""

    name = "last"

    def predict(self, history: PerformanceHistory, now: float) -> float:
        return history.last


class WindowedMeanForecaster(Forecaster):
    """Arithmetic mean over the window -- the paper's history mechanism."""

    name = "mean"

    def predict(self, history: PerformanceHistory, now: float) -> float:
        values = history.values(now)
        if not values:
            raise PolicyError("history is empty")
        return float(np.mean(values))


class WindowedMedianForecaster(Forecaster):
    """Median over the window (robust to single-sample spikes)."""

    name = "median"

    def predict(self, history: PerformanceHistory, now: float) -> float:
        values = history.values(now)
        if not values:
            raise PolicyError("history is empty")
        return float(np.median(values))


class EwmaForecaster(Forecaster):
    """Exponentially weighted moving average with smoothing ``alpha``."""

    name = "ewma"

    def __init__(self, alpha: float = 0.3) -> None:
        if not 0.0 < alpha <= 1.0:
            raise PolicyError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = float(alpha)

    def predict(self, history: PerformanceHistory, now: float) -> float:
        values = history.values(now)
        if not values:
            raise PolicyError("history is empty")
        estimate = values[0]
        for value in values[1:]:
            estimate = self.alpha * value + (1.0 - self.alpha) * estimate
        return float(estimate)


class AdaptiveForecaster(Forecaster):
    """NWS-style selector: use the child with the lowest cumulative error.

    On each prediction, every child forecaster is scored by its cumulative
    absolute one-step-ahead error over the history, and the best child's
    prediction is returned.
    """

    name = "adaptive"

    def __init__(self, children: "Iterable[Forecaster] | None" = None) -> None:
        self.children = list(children) if children is not None else [
            LastValueForecaster(),
            WindowedMeanForecaster(),
            WindowedMedianForecaster(),
            EwmaForecaster(),
        ]
        if not self.children:
            raise PolicyError("need at least one child forecaster")

    def predict(self, history: PerformanceHistory, now: float) -> float:
        samples = history.samples(now)
        if not samples:
            raise PolicyError("history is empty")
        if len(samples) == 1:
            return samples[0][1]
        errors = [0.0] * len(self.children)
        # Replay: at each prefix, ask each child to predict the next sample.
        for split in range(1, len(samples)):
            prefix = PerformanceHistory(window=history.window)
            for t, v in samples[:split]:
                prefix.record(t, v)
            target_t, target_v = samples[split]
            for i, child in enumerate(self.children):
                errors[i] += abs(child.predict(prefix, target_t) - target_v)
        best = int(np.argmin(errors))
        return self.children[best].predict(history, now)


class PerformanceMonitor:
    """Per-resource histories with a shared window and forecaster.

    The swap runtime's view of the world: one history per processor,
    populated by the swap handlers (active processes report measured
    iteration rates; idle spares report probed CPU availability).
    """

    def __init__(self, window: float = 0.0,
                 forecaster: Forecaster | None = None) -> None:
        self.window = float(window)
        self.forecaster = forecaster or (
            LastValueForecaster() if window == 0.0 else WindowedMeanForecaster())
        self._histories: dict = {}

    def record(self, resource, t: float, value: float) -> None:
        """Record a measurement for ``resource`` (any hashable key)."""
        history = self._histories.get(resource)
        if history is None:
            history = self._histories[resource] = PerformanceHistory(self.window)
        history.record(t, value)

    def predict(self, resource, now: float) -> float:
        """Forecast ``resource``'s next value; raises if never measured."""
        history = self._histories.get(resource)
        if history is None or len(history) == 0:
            raise PolicyError(f"no measurements recorded for {resource!r}")
        return self.forecaster.predict(history, now)

    def known_resources(self) -> list:
        return list(self._histories)
