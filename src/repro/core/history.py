"""Performance history and forecasting.

Section 4.1: "The amount of performance history used to predict processor
performance can be tuned.  Increasing the amount of history reduces the
chance of being fooled by a transient load event, but can cause the
application to miss good swapping opportunities.  This parameter enables
swap frequency damping."

:class:`PerformanceHistory` keeps timestamped samples inside a sliding
window.  Forecasters turn a history into a prediction; beyond the paper's
windowed mean we provide median, EWMA, last-value and an adaptive
selector, in the spirit of the Network Weather Service forecaster bank the
paper cites for its measurement infrastructure.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterable, Tuple
from weakref import WeakKeyDictionary

import numpy as np

from repro.errors import PolicyError


class PerformanceHistory:
    """Timestamped samples inside a sliding time window.

    Parameters
    ----------
    window:
        Window length in seconds.  ``0`` means "no history": only the most
        recent sample is retained (the greedy policy's configuration).
    """

    def __init__(self, window: float = 0.0) -> None:
        if window < 0:
            raise PolicyError(f"negative history window {window}")
        self.window = float(window)
        self._samples: Deque[Tuple[float, float]] = deque()
        self.total_recorded = 0
        """Lifetime count of :meth:`record` calls (trimming never lowers
        it); incremental consumers key their progress off this."""

    def __len__(self) -> int:
        return len(self._samples)

    def record(self, t: float, value: float) -> None:
        """Add a sample; timestamps must be non-decreasing."""
        if self._samples and t < self._samples[-1][0]:
            raise PolicyError(
                f"sample at t={t} is older than the newest sample "
                f"(t={self._samples[-1][0]})")
        self._samples.append((float(t), float(value)))
        self.total_recorded += 1
        self._trim(t)

    def _trim(self, now: float) -> None:
        cutoff = now - self.window
        # Always keep at least the newest sample.
        while len(self._samples) > 1 and self._samples[0][0] < cutoff:
            self._samples.popleft()

    def samples(self, now: float | None = None) -> "list[tuple[float, float]]":
        """Samples inside the window ending at ``now`` (a non-mutating view).

        Reads never discard anything: a forecaster probing at a late
        ``now`` sees the windowed view but the stored samples survive for
        later reads at earlier-or-equal times.  (Storage itself is trimmed
        only by :meth:`record`, against the newest sample's timestamp.)
        """
        if now is None or not self._samples:
            return list(self._samples)
        cutoff = now - self.window
        view = [s for s in self._samples if s[0] >= cutoff]
        # Same guarantee as _trim: the newest sample is always visible.
        return view or [self._samples[-1]]

    def values(self, now: float | None = None) -> "list[float]":
        """Windowed values, in one pass (same view as :meth:`samples`)."""
        samples = self._samples
        if now is None or not samples:
            return [s[1] for s in samples]
        cutoff = now - self.window
        view = [v for t, v in samples if t >= cutoff]
        return view or [samples[-1][1]]

    @property
    def last(self) -> float:
        """Most recent value; raises if empty."""
        if not self._samples:
            raise PolicyError("history is empty")
        return self._samples[-1][1]


class Forecaster:
    """Turns a history into a single predicted value."""

    name = "forecaster"

    def predict(self, history: PerformanceHistory, now: float) -> float:
        raise NotImplementedError


class LastValueForecaster(Forecaster):
    """Predict the most recent measurement (no damping)."""

    name = "last"

    def predict(self, history: PerformanceHistory, now: float) -> float:
        return history.last


class WindowedMeanForecaster(Forecaster):
    """Arithmetic mean over the window -- the paper's history mechanism."""

    name = "mean"

    def predict(self, history: PerformanceHistory, now: float) -> float:
        values = history.values(now)
        if not values:
            raise PolicyError("history is empty")
        return float(np.mean(values))


class WindowedMedianForecaster(Forecaster):
    """Median over the window (robust to single-sample spikes)."""

    name = "median"

    def predict(self, history: PerformanceHistory, now: float) -> float:
        values = history.values(now)
        if not values:
            raise PolicyError("history is empty")
        return float(np.median(values))


class EwmaForecaster(Forecaster):
    """Exponentially weighted moving average with smoothing ``alpha``."""

    name = "ewma"

    def __init__(self, alpha: float = 0.3) -> None:
        if not 0.0 < alpha <= 1.0:
            raise PolicyError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = float(alpha)

    def predict(self, history: PerformanceHistory, now: float) -> float:
        values = history.values(now)
        if not values:
            raise PolicyError("history is empty")
        estimate = values[0]
        for value in values[1:]:
            estimate = self.alpha * value + (1.0 - self.alpha) * estimate
        return float(estimate)


class _AdaptiveScore:
    """Incremental one-step-ahead error tally for one scored history.

    ``mirror`` is a rolling copy of the history (same window, trimmed on
    record exactly like the live one) that always lags the scored history
    by the samples not yet consumed: each new sample is first predicted
    from the mirror by every child (accumulating its absolute error), then
    appended.  Every sample is therefore scored exactly once, making the
    per-prediction cost O(new samples) instead of a full O(n^2) replay.
    """

    __slots__ = ("mirror", "errors", "consumed")

    def __init__(self, n_children: int, window: float) -> None:
        self.mirror = PerformanceHistory(window=window)
        self.errors = [0.0] * n_children
        self.consumed = 0


class AdaptiveForecaster(Forecaster):
    """NWS-style selector: use the child with the lowest cumulative error.

    Every child forecaster is scored by its cumulative absolute one-step-
    ahead error over the samples seen so far, and the best child's
    prediction is returned.  Scoring is incremental (each sample is scored
    once, when first observed), so a prediction inside the per-iteration
    decision loop costs O(new samples since the last prediction), not a
    full-history replay.  Errors accumulate over the history's lifetime --
    the NWS formulation -- rather than being recomputed over the current
    window; samples recorded *and* trimmed between two predictions (only
    possible when predictions are rarer than measurements) are skipped.
    """

    name = "adaptive"

    def __init__(self, children: "Iterable[Forecaster] | None" = None) -> None:
        self.children = list(children) if children is not None else [
            LastValueForecaster(),
            WindowedMeanForecaster(),
            WindowedMedianForecaster(),
            EwmaForecaster(),
        ]
        if not self.children:
            raise PolicyError("need at least one child forecaster")
        self._scores: "WeakKeyDictionary[PerformanceHistory, _AdaptiveScore]" \
            = WeakKeyDictionary()

    def _score(self, history: PerformanceHistory) -> _AdaptiveScore:
        """Consume samples recorded since the last call and tally errors."""
        score = self._scores.get(history)
        if score is None:
            score = _AdaptiveScore(len(self.children), history.window)
            self._scores[history] = score
        fresh = history.total_recorded - score.consumed
        if fresh > 0:
            pending = list(history._samples)[-fresh:]
            for t, v in pending:
                if len(score.mirror) > 0:
                    for i, child in enumerate(self.children):
                        score.errors[i] += abs(
                            child.predict(score.mirror, t) - v)
                score.mirror.record(t, v)
            score.consumed = history.total_recorded
        return score

    def predict(self, history: PerformanceHistory, now: float) -> float:
        samples = history.samples(now)
        if not samples:
            raise PolicyError("history is empty")
        score = self._score(history)
        if len(samples) == 1:
            return samples[0][1]
        best = int(np.argmin(score.errors))
        return self.children[best].predict(history, now)


class PerformanceMonitor:
    """Per-resource histories with a shared window and forecaster.

    The swap runtime's view of the world: one history per processor,
    populated by the swap handlers (active processes report measured
    iteration rates; idle spares report probed CPU availability).
    """

    def __init__(self, window: float = 0.0,
                 forecaster: Forecaster | None = None) -> None:
        self.window = float(window)
        self.forecaster = forecaster or (
            LastValueForecaster() if window == 0.0 else WindowedMeanForecaster())
        self._histories: dict = {}

    def record(self, resource, t: float, value: float) -> None:
        """Record a measurement for ``resource`` (any hashable key)."""
        history = self._histories.get(resource)
        if history is None:
            history = self._histories[resource] = PerformanceHistory(self.window)
        history.record(t, value)

    def predict(self, resource, now: float) -> float:
        """Forecast ``resource``'s next value; raises if never measured."""
        history = self._histories.get(resource)
        if history is None or len(history) == 0:
            raise PolicyError(f"no measurements recorded for {resource!r}")
        return self.forecaster.predict(history, now)

    def predict_many(self, resources, now: float) -> "dict | None":
        """Forecasts for every resource in one columnar pass.

        Returns ``None`` as soon as any resource lacks measurements (the
        decision epoch cannot run on a partial view), otherwise a
        resource -> prediction map.  Each prediction is float-identical
        to :meth:`predict` on the same history: the fast paths below
        collapse the per-resource forecaster dispatch, not the algebra.
        """
        histories = self._histories
        forecaster = self.forecaster
        kind = type(forecaster)
        rates = {}
        if kind is LastValueForecaster:
            for r in resources:
                history = histories.get(r)
                if history is None or not history._samples:
                    return None
                rates[r] = history._samples[-1][1]
        elif kind is WindowedMeanForecaster:
            for r in resources:
                history = histories.get(r)
                if history is None or not history._samples:
                    return None
                rates[r] = float(np.mean(history.values(now)))
        else:
            for r in resources:
                history = histories.get(r)
                if history is None or not history._samples:
                    return None
                rates[r] = forecaster.predict(history, now)
        return rates

    def known_resources(self) -> list:
        return list(self._histories)
