"""The paper's primary contribution: swap policies and the payback algebra.

* :mod:`repro.core.payback` -- the cost/benefit algebra of Section 5:
  ``swap_time = alpha + size/beta`` and the *payback distance*.
* :mod:`repro.core.history` -- performance history windows and NWS-style
  forecasters (Section 4.1's "amount of performance history" parameter).
* :mod:`repro.core.policy` -- the policy parameter set of Section 4.1 and
  the three named policies of Section 4.2 (greedy, safe, friendly).
* :mod:`repro.core.decision` -- the decision engine: "swap the slowest
  active processor(s) for the fastest inactive processor(s)", gated by the
  policy's thresholds.
"""

from repro.core.payback import payback_distance, swap_time
from repro.core.history import (
    AdaptiveForecaster,
    EwmaForecaster,
    Forecaster,
    LastValueForecaster,
    PerformanceHistory,
    PerformanceMonitor,
    WindowedMeanForecaster,
    WindowedMedianForecaster,
)
from repro.core.policy import (
    PolicyParams,
    friendly_policy,
    greedy_policy,
    named_policy,
    safe_policy,
)
from repro.core.decision import (
    ReconfigurationCheck,
    SwapDecision,
    SwapMove,
    decide_swaps,
    evaluate_reconfiguration,
)

__all__ = [
    "AdaptiveForecaster",
    "EwmaForecaster",
    "Forecaster",
    "LastValueForecaster",
    "PerformanceHistory",
    "PerformanceMonitor",
    "PolicyParams",
    "ReconfigurationCheck",
    "SwapDecision",
    "SwapMove",
    "WindowedMeanForecaster",
    "WindowedMedianForecaster",
    "decide_swaps",
    "evaluate_reconfiguration",
    "friendly_policy",
    "greedy_policy",
    "named_policy",
    "payback_distance",
    "safe_policy",
    "swap_time",
]
