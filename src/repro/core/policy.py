"""Swap policy parameters and the paper's three named policies.

Section 4.1 parameterizes swapping behaviour along four axes:

* **payback threshold** -- a swap is allowed only if its payback distance
  (Section 5) does not exceed this many iterations; smaller is more
  risk-averse.
* **minimum process improvement threshold** -- the relative performance
  gain of the swapped process must exceed this ("swapping stiction").
* **minimum application improvement threshold** -- the relative gain of
  the *whole application* must exceed this (avoids "needlessly hoarding
  fast processors").
* **history window** -- how much performance history feeds the prediction
  ("swap frequency damping").

Section 4.2 instantiates three policies:

============  ================  ============  ===========  =========
policy        payback thresh.   min process   min app      history
============  ================  ============  ===========  =========
``greedy``    infinite          none          none         none
``safe``      0.5 iterations    20 %          none         5 minutes
``friendly``  infinite          none          2 %          1 minute
============  ================  ============  ===========  =========
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import PolicyError
from repro.units import MINUTE


@dataclass(frozen=True)
class PolicyParams:
    """The policy parameter set of the paper's Section 4.1."""

    name: str
    """Human-readable policy name."""
    payback_threshold: float = float("inf")
    """Maximum acceptable payback distance in iterations (inf = no check)."""
    min_process_improvement: float = 0.0
    """Required relative rate gain of the swapped process (0.2 = 20 %)."""
    min_app_improvement: float = 0.0
    """Required relative performance gain of the whole application."""
    history_window: float = 0.0
    """Seconds of performance history used for prediction (0 = none)."""
    max_swaps_per_decision: int | None = None
    """Cap on simultaneous swaps per decision epoch (None = unlimited)."""

    def __post_init__(self) -> None:
        if self.payback_threshold <= 0:
            raise PolicyError(
                f"payback threshold must be > 0, got {self.payback_threshold}")
        if self.min_process_improvement < 0:
            raise PolicyError("min_process_improvement must be >= 0")
        if self.min_app_improvement < 0:
            raise PolicyError("min_app_improvement must be >= 0")
        if self.history_window < 0:
            raise PolicyError("history_window must be >= 0")
        if (self.max_swaps_per_decision is not None
                and self.max_swaps_per_decision < 1):
            raise PolicyError("max_swaps_per_decision must be >= 1 or None")

    def with_overrides(self, **kwargs) -> "PolicyParams":
        """A copy with some fields replaced (ablation studies)."""
        return replace(self, **kwargs)

    def describe(self) -> str:
        payback = ("inf" if self.payback_threshold == float("inf")
                   else f"{self.payback_threshold:g} iter")
        return (f"{self.name}(payback<={payback}, "
                f"proc>={self.min_process_improvement:.0%}, "
                f"app>={self.min_app_improvement:.0%}, "
                f"history={self.history_window:g}s)")


def greedy_policy() -> PolicyParams:
    """The greedy policy: swap on any indication of improvement.

    "Infinite payback threshold, no minimum process improvement threshold,
    no minimum application improvement threshold, and uses no performance
    history."
    """
    return PolicyParams(name="greedy")


def safe_policy() -> PolicyParams:
    """The safe policy: significant benefit, minimal downside.

    "A low payback threshold (0.5 iterations), a high minimum improvement
    threshold (20%), no minimum application improvement threshold, and a
    large amount of performance history (5 minutes)."
    """
    return PolicyParams(
        name="safe",
        payback_threshold=0.5,
        min_process_improvement=0.20,
        history_window=5 * MINUTE,
    )


def friendly_policy() -> PolicyParams:
    """The friendly policy: benefit without hogging fast processors.

    "No minimum process improvement threshold, a slight overall
    application improvement threshold (2%), and a moderate amount of
    performance history (1 minute)."
    """
    return PolicyParams(
        name="friendly",
        min_app_improvement=0.02,
        history_window=1 * MINUTE,
    )


_NAMED = {
    "greedy": greedy_policy,
    "safe": safe_policy,
    "friendly": friendly_policy,
}


def named_policy(name: str) -> PolicyParams:
    """Look up one of the paper's policies by name."""
    try:
        return _NAMED[name]()
    except KeyError:
        raise PolicyError(
            f"unknown policy {name!r}; choose from {sorted(_NAMED)}") from None
