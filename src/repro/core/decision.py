"""The swap decision engine.

"All three policies, when they decide to swap, swap the slowest active
processor(s) for the fastest inactive processor(s)."  (Section 4.2)

:func:`decide_swaps` implements that procedure: repeatedly propose
replacing the currently slowest active processor with the fastest unused
spare, accept the move only if it passes every gate the policy defines
(process improvement, application improvement, payback threshold), and
stop at the first rejected proposal.

:func:`evaluate_reconfiguration` is the reusable gate; the
checkpoint/restart strategy applies it to whole-set migrations "based on
the same criteria used to evaluate process swapping decisions"
(Section 6).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.core.payback import iterations_to_break_even
from repro.core.policy import PolicyParams
from repro.errors import PolicyError


@dataclass(frozen=True)
class ReconfigurationCheck:
    """Outcome of gating one proposed reconfiguration."""

    accepted: bool
    app_improvement: float
    """Relative application performance gain (new_perf/old_perf - 1)."""
    payback: float
    """Payback distance in iterations (may be inf or negative)."""
    reason: str
    """Why the proposal was rejected ("" when accepted)."""


@dataclass(frozen=True)
class GateOutcome:
    """One gate evaluation from a decision epoch (the audit trail).

    Every proposal :func:`decide_swaps` considers leaves exactly one of
    these, whether it was committed or not -- the observability layer
    (:mod:`repro.obs`) serializes them so a trace shows *why* each epoch
    swapped or declined.
    """

    out_host: int
    in_host: int
    gate: str
    """Which gate settled the proposal: ``"process"`` (per-process
    improvement threshold), ``"application"`` (the
    :func:`evaluate_reconfiguration` gates), or ``"accepted"``."""
    accepted: bool
    reason: str
    """Why the proposal was rejected ("" when accepted)."""
    process_improvement: float
    app_improvement: "float | None" = None
    """Relative application gain (None when the process gate failed
    first and the application-level gates never ran)."""
    payback: "float | None" = None
    """Payback distance in iterations (None, same as above)."""

    def to_record(self) -> dict:
        """A JSON-ready dict for trace emission."""
        return {"out_host": self.out_host, "in_host": self.in_host,
                "gate": self.gate, "accepted": self.accepted,
                "reason": self.reason,
                "process_improvement": self.process_improvement,
                "app_improvement": self.app_improvement,
                "payback": self.payback}


@dataclass(frozen=True)
class SwapMove:
    """One accepted processor exchange."""

    out_host: int
    """Platform index of the active host being retired to the spare pool."""
    in_host: int
    """Platform index of the spare host becoming active."""
    process_improvement: float
    """Relative rate gain of the swapped process."""
    app_improvement: float
    """Relative application gain of this individual move."""
    payback: float
    """Payback distance of this individual move, in iterations."""


@dataclass(frozen=True)
class SwapDecision:
    """Result of one decision epoch."""

    moves: "tuple[SwapMove, ...]" = ()
    old_iteration_time: float = 0.0
    """Predicted iteration time with the pre-decision active set."""
    new_iteration_time: float = 0.0
    """Predicted iteration time after applying all accepted moves."""
    rejected_reason: str = ""
    """The gate that ended the batch: the first rejection *after* the
    last committed move ("" only if the spare pool ran out or the
    per-decision cap was hit with every proposal accepted)."""
    gates: "tuple[GateOutcome, ...]" = ()
    """Every gate evaluation of the epoch, in proposal order."""

    @property
    def should_swap(self) -> bool:
        return bool(self.moves)

    def active_set_after(self, active: "list[int]") -> "list[int]":
        """The active set with all moves applied (order preserved)."""
        result = list(active)
        for move in self.moves:
            result[result.index(move.out_host)] = move.in_host
        return result


def evaluate_reconfiguration(old_iteration_time: float,
                             new_iteration_time: float,
                             cost: float,
                             params: PolicyParams) -> ReconfigurationCheck:
    """Gate one proposed reconfiguration with the policy's thresholds.

    Performance is measured as ``1/iteration_time``, so the application
    improvement is ``old/new - 1`` and the payback distance is
    ``cost / (old - new)``.
    """
    if old_iteration_time <= 0 or new_iteration_time <= 0:
        raise PolicyError("iteration times must be > 0")
    app_improvement = old_iteration_time / new_iteration_time - 1.0
    payback = iterations_to_break_even(cost, old_iteration_time,
                                       new_iteration_time)
    if app_improvement <= 0.0:
        return ReconfigurationCheck(False, app_improvement, payback,
                                    "no application improvement")
    if app_improvement < params.min_app_improvement:
        return ReconfigurationCheck(
            False, app_improvement, payback,
            f"application improvement {app_improvement:.2%} below "
            f"threshold {params.min_app_improvement:.2%}")
    if payback > params.payback_threshold:
        return ReconfigurationCheck(
            False, app_improvement, payback,
            f"payback {payback:.2f} iterations exceeds threshold "
            f"{params.payback_threshold:g}")
    return ReconfigurationCheck(True, app_improvement, payback, "")


def _iteration_time(active: "list[int]", rates: Mapping[int, float],
                    chunk_flops: Mapping[int, float],
                    comm_time: float) -> float:
    """Predicted BSP iteration time: slowest compute plus communication."""
    return max(chunk_flops[h] / rates[h] for h in active) + comm_time


def decide_swaps(active: "list[int]",
                 spares: "list[int]",
                 rates: Mapping[int, float],
                 chunk_flops: "Mapping[int, float]",
                 comm_time: float,
                 swap_cost: float,
                 params: PolicyParams) -> SwapDecision:
    """Decide which processor exchanges to perform this epoch.

    Parameters
    ----------
    active:
        Platform indices of the hosts currently running the application.
    spares:
        Platform indices of the over-allocated idle hosts.
    rates:
        Predicted effective compute rate (flop/s) of every host in
        ``active + spares``, already filtered through the policy's history
        window by the caller.
    chunk_flops:
        Compute work per iteration of the process on each active host.  A
        swapped-in host inherits the outgoing host's chunk (the paper
        forbids data redistribution).
    comm_time:
        Predicted duration of the iteration's communication phase.
    swap_cost:
        Time to transfer one process state image (``alpha + size/beta``).
    params:
        The policy.

    Returns
    -------
    SwapDecision
        Accepted moves in order; empty if the first proposal failed a gate.
    """
    if not active:
        raise PolicyError("active set is empty")
    missing = [h for h in list(active) + list(spares) if h not in rates]
    if missing:
        raise PolicyError(f"no predicted rate for hosts {missing}")
    for host, rate in rates.items():
        if rate <= 0:
            raise PolicyError(f"non-positive rate {rate} for host {host}")

    current = list(active)
    chunks = dict(chunk_flops)
    available = sorted(spares, key=lambda h: rates[h], reverse=True)
    original_iter = _iteration_time(current, rates, chunks, comm_time)
    rejected_reason = ""

    # Build a *batch* of tentative moves (slowest active <-> fastest
    # spare), then commit the longest prefix whose cumulative effect
    # passes the application-level gates.  Per-move gating would deadlock
    # on tied actives: replacing one of several equally slow processors
    # yields no application gain until its peers are replaced too, yet
    # the paper's policies explicitly swap "the slowest active
    # processor(s) for the fastest inactive processor(s)" (plural).
    candidates: list[SwapMove] = []
    gates: list[GateOutcome] = []
    committed = 0
    committed_iter = original_iter

    # ``rejected_reason`` tracks the first rejection since the last
    # *committed* move: that is the gate that stopped the accepted prefix
    # from growing.  It resets on every acceptance, so when the epoch
    # ends it either names the gate that ended the batch or stays ""
    # (spare pool exhausted / per-decision cap with nothing rejected).
    while available:
        if (params.max_swaps_per_decision is not None
                and len(candidates) >= params.max_swaps_per_decision):
            break
        # Slowest active processor = largest predicted compute time.
        out_host = max(current, key=lambda h: chunks[h] / rates[h])
        in_host = available[0]

        process_improvement = rates[in_host] / rates[out_host] - 1.0
        if process_improvement <= 0.0:
            reason = "fastest spare is no faster than slowest active"
            gates.append(GateOutcome(
                out_host=out_host, in_host=in_host, gate="process",
                accepted=False, reason=reason,
                process_improvement=process_improvement))
            if not rejected_reason:
                rejected_reason = reason
            break
        if process_improvement < params.min_process_improvement:
            reason = (
                f"process improvement {process_improvement:.2%} below "
                f"threshold {params.min_process_improvement:.2%}")
            gates.append(GateOutcome(
                out_host=out_host, in_host=in_host, gate="process",
                accepted=False, reason=reason,
                process_improvement=process_improvement))
            if not rejected_reason:
                rejected_reason = reason
            break

        current[current.index(out_host)] = in_host
        chunks[in_host] = chunks.pop(out_host)
        available.pop(0)
        new_iter = _iteration_time(current, rates, chunks, comm_time)
        cumulative_cost = swap_cost * (len(candidates) + 1)
        check = evaluate_reconfiguration(original_iter, new_iter,
                                         cumulative_cost, params)
        candidates.append(SwapMove(out_host=out_host, in_host=in_host,
                                   process_improvement=process_improvement,
                                   app_improvement=check.app_improvement,
                                   payback=check.payback))
        gates.append(GateOutcome(
            out_host=out_host, in_host=in_host,
            gate="accepted" if check.accepted else "application",
            accepted=check.accepted, reason=check.reason,
            process_improvement=process_improvement,
            app_improvement=check.app_improvement, payback=check.payback))
        if check.accepted:
            committed = len(candidates)
            committed_iter = new_iter
            rejected_reason = ""
        elif not rejected_reason:
            rejected_reason = check.reason

    return SwapDecision(moves=tuple(candidates[:committed]),
                        old_iteration_time=original_iter,
                        new_iteration_time=committed_iter,
                        rejected_reason=rejected_reason,
                        gates=tuple(gates))
