"""The swap decision engine.

"All three policies, when they decide to swap, swap the slowest active
processor(s) for the fastest inactive processor(s)."  (Section 4.2)

:func:`decide_swaps` implements that procedure: repeatedly propose
replacing the currently slowest active processor with the fastest unused
spare, accept the move only if it passes every gate the policy defines
(process improvement, application improvement, payback threshold), and
stop at the first rejected proposal.

:func:`evaluate_reconfiguration` is the reusable gate; the
checkpoint/restart strategy applies it to whole-set migrations "based on
the same criteria used to evaluate process swapping decisions"
(Section 6).
"""

from __future__ import annotations

from typing import Mapping, NamedTuple

from repro.core.payback import iterations_to_break_even
from repro.core.policy import PolicyParams
from repro.errors import PolicyError

# The record types below are NamedTuples rather than frozen dataclasses:
# they carry the same immutable, keyword-constructed, attribute-read
# semantics, but allocate as plain tuples -- decide_swaps creates several
# per epoch on the sweep hot path, where the frozen-dataclass
# ``object.__setattr__``-per-field protocol measurably dominates.


class ReconfigurationCheck(NamedTuple):
    """Outcome of gating one proposed reconfiguration."""

    accepted: bool
    app_improvement: float
    """Relative application performance gain (new_perf/old_perf - 1)."""
    payback: float
    """Payback distance in iterations (may be inf or negative)."""
    reason: str
    """Why the proposal was rejected ("" when accepted)."""


class GateOutcome(NamedTuple):
    """One gate evaluation from a decision epoch (the audit trail).

    Every proposal :func:`decide_swaps` considers leaves exactly one of
    these, whether it was committed or not -- the observability layer
    (:mod:`repro.obs`) serializes them so a trace shows *why* each epoch
    swapped or declined.
    """

    out_host: int
    in_host: int
    gate: str
    """Which gate settled the proposal: ``"process"`` (per-process
    improvement threshold), ``"application"`` (the
    :func:`evaluate_reconfiguration` gates), or ``"accepted"``."""
    accepted: bool
    reason: str
    """Why the proposal was rejected ("" when accepted)."""
    process_improvement: float
    app_improvement: "float | None" = None
    """Relative application gain (None when the process gate failed
    first and the application-level gates never ran)."""
    payback: "float | None" = None
    """Payback distance in iterations (None, same as above)."""

    def to_record(self) -> dict:
        """A JSON-ready dict for trace emission."""
        return {"out_host": self.out_host, "in_host": self.in_host,
                "gate": self.gate, "accepted": self.accepted,
                "reason": self.reason,
                "process_improvement": self.process_improvement,
                "app_improvement": self.app_improvement,
                "payback": self.payback}


class SwapMove(NamedTuple):
    """One accepted processor exchange."""

    out_host: int
    """Platform index of the active host being retired to the spare pool."""
    in_host: int
    """Platform index of the spare host becoming active."""
    process_improvement: float
    """Relative rate gain of the swapped process."""
    app_improvement: float
    """Relative application gain of this individual move."""
    payback: float
    """Payback distance of this individual move, in iterations."""


class SwapDecision(NamedTuple):
    """Result of one decision epoch."""

    moves: "tuple[SwapMove, ...]" = ()
    old_iteration_time: float = 0.0
    """Predicted iteration time with the pre-decision active set."""
    new_iteration_time: float = 0.0
    """Predicted iteration time after applying all accepted moves."""
    rejected_reason: str = ""
    """The gate that ended the batch: the first rejection *after* the
    last committed move ("" only if the spare pool ran out or the
    per-decision cap was hit with every proposal accepted)."""
    gates: "tuple[GateOutcome, ...]" = ()
    """Every gate evaluation of the epoch, in proposal order."""

    @property
    def should_swap(self) -> bool:
        return bool(self.moves)

    def active_set_after(self, active: "list[int]") -> "list[int]":
        """The active set with all moves applied (order preserved)."""
        result = list(active)
        for move in self.moves:
            result[result.index(move.out_host)] = move.in_host
        return result


def evaluate_reconfiguration(old_iteration_time: float,
                             new_iteration_time: float,
                             cost: float,
                             params: PolicyParams) -> ReconfigurationCheck:
    """Gate one proposed reconfiguration with the policy's thresholds.

    Performance is measured as ``1/iteration_time``, so the application
    improvement is ``old/new - 1`` and the payback distance is
    ``cost / (old - new)``.
    """
    if old_iteration_time <= 0 or new_iteration_time <= 0:
        raise PolicyError("iteration times must be > 0")
    app_improvement = old_iteration_time / new_iteration_time - 1.0
    payback = iterations_to_break_even(cost, old_iteration_time,
                                       new_iteration_time)
    if app_improvement <= 0.0:
        return ReconfigurationCheck(False, app_improvement, payback,
                                    "no application improvement")
    if app_improvement < params.min_app_improvement:
        return ReconfigurationCheck(
            False, app_improvement, payback,
            f"application improvement {app_improvement:.2%} below "
            f"threshold {params.min_app_improvement:.2%}")
    if payback > params.payback_threshold:
        return ReconfigurationCheck(
            False, app_improvement, payback,
            f"payback {payback:.2f} iterations exceeds threshold "
            f"{params.payback_threshold:g}")
    return ReconfigurationCheck(True, app_improvement, payback, "")


def _iteration_time(active: "list[int]", rates: Mapping[int, float],
                    chunk_flops: Mapping[int, float],
                    comm_time: float) -> float:
    """Predicted BSP iteration time: slowest compute plus communication."""
    return max(chunk_flops[h] / rates[h] for h in active) + comm_time


def decide_swaps(active: "list[int]",
                 spares: "list[int]",
                 rates: Mapping[int, float],
                 chunk_flops: "Mapping[int, float]",
                 comm_time: float,
                 swap_cost: float,
                 params: PolicyParams) -> SwapDecision:
    """Decide which processor exchanges to perform this epoch.

    Parameters
    ----------
    active:
        Platform indices of the hosts currently running the application.
    spares:
        Platform indices of the over-allocated idle hosts.
    rates:
        Predicted effective compute rate (flop/s) of every host in
        ``active + spares``, already filtered through the policy's history
        window by the caller.
    chunk_flops:
        Compute work per iteration of the process on each active host.  A
        swapped-in host inherits the outgoing host's chunk (the paper
        forbids data redistribution).
    comm_time:
        Predicted duration of the iteration's communication phase.
    swap_cost:
        Time to transfer one process state image (``alpha + size/beta``).
    params:
        The policy.

    Returns
    -------
    SwapDecision
        Accepted moves in order; empty if the first proposal failed a gate.
    """
    if not active:
        raise PolicyError("active set is empty")
    has_rate = rates.__contains__
    if not (all(map(has_rate, active)) and all(map(has_rate, spares))):
        missing = [h for h in list(active) + list(spares) if h not in rates]
        raise PolicyError(f"no predicted rate for hosts {missing}")
    if min(rates.values()) <= 0:
        for host, rate in rates.items():
            if rate <= 0:
                raise PolicyError(f"non-positive rate {rate} for host {host}")

    # Copy-on-write: the working sets are only duplicated once a move is
    # actually applied -- the common no-swap epoch touches nothing.
    current = active
    chunks = chunk_flops
    available = spares
    rate_of = rates.__getitem__
    original_iter = None
    rejected_reason = ""

    # Build a *batch* of tentative moves (slowest active <-> fastest
    # spare), then commit the longest prefix whose cumulative effect
    # passes the application-level gates.  Per-move gating would deadlock
    # on tied actives: replacing one of several equally slow processors
    # yields no application gain until its peers are replaced too, yet
    # the paper's policies explicitly swap "the slowest active
    # processor(s) for the fastest inactive processor(s)" (plural).
    candidates: list[SwapMove] = []
    gates: list[GateOutcome] = []
    committed = 0

    # ``rejected_reason`` tracks the first rejection since the last
    # *committed* move: that is the gate that stopped the accepted prefix
    # from growing.  It resets on every acceptance, so when the epoch
    # ends it either names the gate that ended the batch or stays ""
    # (spare pool exhausted / per-decision cap with nothing rejected).
    while available:
        if (params.max_swaps_per_decision is not None
                and len(candidates) >= params.max_swaps_per_decision):
            break
        # Slowest active processor = largest predicted compute time (ties
        # resolve to the first maximum, like a stable descending sort);
        # one fused scan yields both the victim and the iteration time.
        out_host = current[0]
        worst = chunks[out_host] / rates[out_host]
        for h in current:
            v = chunks[h] / rates[h]
            if v > worst:
                worst = v
                out_host = h
        if original_iter is None:
            original_iter = worst + comm_time
        in_host = max(available, key=rate_of)

        process_improvement = rates[in_host] / rates[out_host] - 1.0
        if process_improvement <= 0.0:
            reason = "fastest spare is no faster than slowest active"
            gates.append(GateOutcome(out_host, in_host, "process", False,
                                     reason, process_improvement))
            if not rejected_reason:
                rejected_reason = reason
            break
        if process_improvement < params.min_process_improvement:
            reason = (
                f"process improvement {process_improvement:.2%} below "
                f"threshold {params.min_process_improvement:.2%}")
            gates.append(GateOutcome(out_host, in_host, "process", False,
                                     reason, process_improvement))
            if not rejected_reason:
                rejected_reason = reason
            break

        if current is active:
            current = list(active)
            chunks = dict(chunk_flops)
            available = list(spares)
        current[current.index(out_host)] = in_host
        chunks[in_host] = chunks.pop(out_host)
        available.remove(in_host)
        new_iter = _iteration_time(current, rates, chunks, comm_time)
        cumulative_cost = swap_cost * (len(candidates) + 1)
        check = evaluate_reconfiguration(original_iter, new_iter,
                                         cumulative_cost, params)
        candidates.append(SwapMove(out_host, in_host, process_improvement,
                                   check.app_improvement, check.payback))
        gates.append(GateOutcome(
            out_host, in_host,
            "accepted" if check.accepted else "application",
            check.accepted, check.reason, process_improvement,
            check.app_improvement, check.payback))
        if check.accepted:
            committed = len(candidates)
            committed_iter = new_iter
            rejected_reason = ""
        elif not rejected_reason:
            rejected_reason = check.reason

    if original_iter is None:
        # Empty spare pool (or a zero-move cap): no proposal was ever
        # scanned, so compute the baseline prediction directly.
        original_iter = _iteration_time(active, rates, chunk_flops,
                                        comm_time)
    if not committed:
        committed_iter = original_iter
    return SwapDecision(tuple(candidates[:committed]), original_iter,
                        committed_iter, rejected_reason, tuple(gates))
