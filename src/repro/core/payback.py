"""The payback algebra of the paper's Section 5.

The *payback distance* is the number of iterations, at the increased
performance rate achieved after swapping, required to recover the cost of
the swap::

    payback_distance = swap_time / (old_iteration_time * (1 - old_perf / new_perf))

with the swap time modelled as a state transfer over a link with latency
``alpha`` and bandwidth ``beta``::

    swap_time = alpha + process_size / beta

Sign conventions follow the paper exactly: a *negative* payback distance
means there is no benefit (performance would drop); a *positive* one means
the overhead is recouped after that many iterations; equal performance
yields ``+inf`` (the cost is never recouped).

Worked example from the paper: iteration time and swap time both 10 s;
doubling performance gives a payback distance of 2 iterations; quadrupling
gives 4/3.
"""

from __future__ import annotations

import math

from repro.errors import PolicyError

#: Relative tolerance under which two performances count as *equal* (the
#: paper's "+inf, never recouped" case).  Without it, near-identical
#: performances make ``1 - old/new`` underflow to a denormal or ``-0.0``
#: and the quotient explodes to a huge-but-finite (or sign-flipped)
#: distance that the payback gate then misreads.
EQUAL_PERFORMANCE_RTOL = 1e-12


def swap_time(process_size: float, latency: float, bandwidth: float) -> float:
    """Time to transfer one process state image: ``alpha + size/beta``.

    Parameters
    ----------
    process_size:
        Bytes of registered application state to move.
    latency:
        Link latency alpha in seconds.
    bandwidth:
        Link bandwidth beta in bytes/s.
    """
    if process_size < 0:
        raise PolicyError(f"negative process size {process_size}")
    if latency < 0:
        raise PolicyError(f"negative latency {latency}")
    if bandwidth <= 0:
        raise PolicyError(f"bandwidth must be > 0, got {bandwidth}")
    return latency + process_size / bandwidth


def payback_distance(swap_cost: float, old_iteration_time: float,
                     old_performance: float, new_performance: float) -> float:
    """Iterations at the new rate needed to recoup ``swap_cost``.

    Parameters
    ----------
    swap_cost:
        Time the application is paused for the state transfer (seconds).
    old_iteration_time:
        Application iteration time before the swap (seconds).
    old_performance, new_performance:
        Any metric that increases with application performance (the paper
        suggests flop rate; the strategies here use ``1/iteration_time``).

    Returns
    -------
    float
        Positive: iterations to amortize the cost.  ``+inf``: performance
        unchanged, never amortized.  Negative: performance *drops*; the
        paper reads this as "no benefit".
    """
    if swap_cost < 0:
        raise PolicyError(f"negative swap cost {swap_cost}")
    if old_iteration_time <= 0:
        raise PolicyError(f"iteration time must be > 0, got {old_iteration_time}")
    if old_performance <= 0 or new_performance <= 0:
        raise PolicyError("performance metrics must be > 0")
    if math.isclose(old_performance, new_performance,
                    rel_tol=EQUAL_PERFORMANCE_RTOL, abs_tol=0.0):
        return float("inf")
    denominator = old_iteration_time * (1.0 - old_performance / new_performance)
    if denominator == 0.0:  # covers +0.0 and -0.0 from underflow
        return float("inf")
    return swap_cost / denominator


def iterations_to_break_even(swap_cost: float, old_iteration_time: float,
                             new_iteration_time: float) -> float:
    """Payback distance expressed directly in iteration times.

    With performance measured as ``1/iteration_time`` the paper's formula
    reduces to ``swap_cost / (old_iteration_time - new_iteration_time)``;
    this helper avoids the intermediate rates.
    """
    if new_iteration_time <= 0:
        raise PolicyError(f"iteration time must be > 0, got {new_iteration_time}")
    return payback_distance(swap_cost, old_iteration_time,
                            1.0 / old_iteration_time, 1.0 / new_iteration_time)
