"""The shared network link.

The paper simulates "a single, shared network link with latency alpha and
bandwidth beta.  Thus messages compete for a fixed amount of communication
bandwidth, and collisions delay message transmission."

Two views of the same medium:

* :class:`LinkSpec` -- analytic helpers used by the iteration-level
  strategy simulators (transfer time, serialized bulk phases, the paper's
  ``swap_time = alpha + size/beta``);
* :class:`FairShareLink` -- an event-driven flow model for the
  discrete-event MPI layer: concurrent flows each receive
  ``bandwidth / n_active``, recomputed whenever a flow starts or ends
  (max-min fair sharing on one bottleneck, as in SimGrid).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import PlatformError
from repro.simkernel.events import Event
from repro.units import MB_S

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.simkernel.engine import Simulator


@dataclass(frozen=True)
class LinkSpec:
    """Analytic description of the shared link."""

    latency: float = 1e-3
    """One-way message latency alpha in seconds."""
    bandwidth: float = 6 * MB_S
    """Shared bandwidth beta in bytes/s (paper: 6 MB/s 100baseT LAN)."""

    def __post_init__(self) -> None:
        if self.latency < 0:
            raise PlatformError(f"latency must be >= 0, got {self.latency}")
        if self.bandwidth <= 0:
            raise PlatformError(f"bandwidth must be > 0, got {self.bandwidth}")

    def transfer_time(self, nbytes: float) -> float:
        """Time for one message with the link to itself: ``alpha + n/beta``.

        This is exactly the paper's ``swap time`` formula for moving one
        process state image.
        """
        if nbytes < 0:
            raise PlatformError(f"negative message size {nbytes}")
        return self.latency + nbytes / self.bandwidth

    def serialized_time(self, total_bytes: float, n_messages: int = 1) -> float:
        """Time for ``n_messages`` totalling ``total_bytes`` on the shared
        medium.

        Payloads serialize on the single link; latencies pipeline so only
        one is paid (first-order model of the paper's collision delays).
        """
        if n_messages < 1:
            raise PlatformError(f"need >= 1 message, got {n_messages}")
        if total_bytes < 0:
            raise PlatformError(f"negative total size {total_bytes}")
        return self.latency + total_bytes / self.bandwidth

    def exchange_phase_time(self, per_process_bytes: float, n_processes: int) -> float:
        """Duration of an iteration's communication phase.

        Each of the ``n_processes`` application processes moves
        ``per_process_bytes`` across the shared medium; total traffic
        serializes on the link.
        """
        if n_processes < 1:
            raise PlatformError(f"need >= 1 process, got {n_processes}")
        if n_processes == 1 or per_process_bytes == 0:
            return 0.0  # nothing to exchange
        return self.serialized_time(per_process_bytes * n_processes, n_processes)


class _Flow:
    """A single in-progress transfer on a :class:`FairShareLink`."""

    __slots__ = ("remaining", "done")

    def __init__(self, nbytes: float, done: Event) -> None:
        self.remaining = float(nbytes)
        self.done = done


class FairShareLink:
    """Event-driven shared link with max-min fair bandwidth sharing.

    Each transfer pays the latency once, then its payload progresses at
    ``bandwidth / n_active_flows``; rates are recomputed whenever a flow
    joins or leaves.
    """

    def __init__(self, sim: "Simulator", spec: LinkSpec) -> None:
        self.sim = sim
        self.spec = spec
        self._flows: list[_Flow] = []
        self._last_update = sim.now
        self._wake_version = 0
        #: Total bytes delivered so far (diagnostic / tests).
        self.bytes_delivered = 0.0

    @property
    def active_flows(self) -> int:
        return len(self._flows)

    def transfer(self, nbytes: float) -> Event:
        """Start a transfer; the returned event fires on completion."""
        if nbytes < 0:
            raise PlatformError(f"negative message size {nbytes}")
        done = self.sim.event()
        if self.spec.latency > 0:
            latency_done = self.sim.timeout(self.spec.latency)
            latency_done.add_callback(lambda _ev: self._admit(nbytes, done))
        else:
            self._admit(nbytes, done)
        return done

    # -- internals --------------------------------------------------------

    def _admit(self, nbytes: float, done: Event) -> None:
        self._progress()
        if nbytes <= 0:
            done.succeed()
            self._reschedule()
            return
        self._flows.append(_Flow(nbytes, done))
        self._reschedule()

    def _rate_per_flow(self) -> float:
        return self.spec.bandwidth / max(len(self._flows), 1)

    def _progress(self) -> None:
        """Advance all flows from the last update to now; complete any done.

        Also runs with zero elapsed time: floating-point residue can leave
        a flow with epsilon bytes remaining at its own completion instant,
        and it must still complete (otherwise the wake timer respins at
        the same timestamp forever).
        """
        now = self.sim.now
        elapsed = now - self._last_update
        self._last_update = now
        if not self._flows:
            return
        moved = max(elapsed, 0.0) * self._rate_per_flow()
        still_running: list[_Flow] = []
        for flow in self._flows:
            progress = min(moved, flow.remaining)
            flow.remaining -= progress
            self.bytes_delivered += progress
            if flow.remaining <= 1e-9:
                self.bytes_delivered += flow.remaining
                flow.remaining = 0.0
                flow.done.succeed()
            else:
                still_running.append(flow)
        self._flows = still_running

    def _reschedule(self) -> None:
        """Schedule a wake-up at the earliest flow completion."""
        self._wake_version += 1
        if not self._flows:
            return
        version = self._wake_version
        shortest = min(flow.remaining for flow in self._flows)
        delay = shortest / self._rate_per_flow()
        # Never schedule below the float resolution of the clock: a wake
        # that does not advance time cannot progress any flow.
        min_tick = max(abs(self.sim.now) * 1e-12, 1e-9)
        wake = self.sim.timeout(max(delay, min_tick))

        def on_wake(_event: Event) -> None:
            if version != self._wake_version:
                return  # stale: flow set changed since this was scheduled
            self._progress()
            self._reschedule()

        wake.add_callback(on_wake)
