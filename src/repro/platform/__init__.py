"""Platform model: heterogeneous hosts and a shared network link.

Reproduces the paper's simulated environment (its Section 6): workstations
"in the hundreds-of-megaflops performance range ... connected via a low
latency shared communication link capable of transferring 6 MB/s", with
MPI startup of 3/4 second per process, and per-host external CPU load
drawn from a :mod:`repro.load` model.
"""

from repro.platform.host import Host, HostSpec
from repro.platform.network import FairShareLink, LinkSpec
from repro.platform.cluster import Platform, make_platform

__all__ = [
    "FairShareLink",
    "Host",
    "HostSpec",
    "LinkSpec",
    "Platform",
    "make_platform",
]
