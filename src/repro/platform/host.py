"""Hosts: heterogeneous workstations with time-varying external load.

A host has an unloaded ``speed`` in flop/s and a :class:`LoadTrace` giving
the number of external compute-bound processes over time.  Under fair CPU
timesharing one application process computes at ``speed / (1 + n(t))``.
The two simulator-facing operations -- finish time of a compute demand and
(window-averaged) effective rate -- are exact trace-segment walks, not
time-stepped approximations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import PlatformError
from repro.load.base import ConstantLoadModel, LoadModel, LoadTrace
from repro.units import HOUR


@dataclass(frozen=True)
class HostSpec:
    """Static description of a workstation."""

    name: str
    """Unique host name (e.g. ``"host03"``)."""
    speed: float
    """Unloaded compute speed in flop/s."""
    load_model: LoadModel = field(default_factory=ConstantLoadModel)
    """External CPU load model for this host."""

    def __post_init__(self) -> None:
        if self.speed <= 0:
            raise PlatformError(f"host speed must be > 0, got {self.speed}")


class Host:
    """A workstation instantiated with a concrete load trace.

    Parameters
    ----------
    spec:
        Static host description.
    rng:
        Random stream for the load model.
    horizon:
        Initial trace materialization horizon (extends lazily).
    index:
        Position of the host in its platform (set by the platform builder).
    """

    def __init__(self, spec: HostSpec, rng, horizon: float = HOUR,
                 index: int = -1) -> None:
        self.spec = spec
        self.index = index
        self.trace: LoadTrace = spec.load_model.build(rng, horizon)

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def speed(self) -> float:
        """Unloaded compute speed in flop/s."""
        return self.spec.speed

    # -- load-aware compute ----------------------------------------------

    def availability(self, t: float) -> float:
        """Instantaneous CPU share of one application process at ``t``."""
        return self.trace.availability_at(t)

    def effective_rate(self, t: float, window: float = 0.0) -> float:
        """Effective compute rate in flop/s, averaged over ``[t-window, t]``.

        ``window == 0`` gives the instantaneous rate.  This is the
        quantity the swap runtime measures for *inactive* (spare)
        processors, and the forecast basis for swap decisions.
        """
        if window < 0:
            raise PlatformError(f"negative window {window}")
        t0 = max(0.0, t - window)
        return self.speed * self.trace.mean_availability(t0, t)

    def compute_finish(self, t0: float, flops: float) -> float:
        """Time at which ``flops`` of work started at ``t0`` completes."""
        if flops < 0:
            raise PlatformError(f"negative compute demand {flops}")
        return self.trace.advance_work(t0, flops / self.speed)

    def compute_time(self, t0: float, flops: float) -> float:
        """Duration of ``flops`` of work started at ``t0``."""
        return self.compute_finish(t0, flops) - t0

    def measured_rate(self, t0: float, t1: float, flops: float) -> float:
        """Observed flop/s of a task that ran ``flops`` over ``[t0, t1]``.

        This is what an application-intrinsic monitor reports for an
        *active* process after an iteration.
        """
        if t1 <= t0:
            raise PlatformError(f"empty measurement interval [{t0}, {t1}]")
        return flops / (t1 - t0)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Host {self.name!r} speed={self.speed:.3g} flop/s>"
