"""Platform assembly: a pool of hosts plus the shared link.

:func:`make_platform` builds the paper's evaluation environment: ``P``
workstations with unloaded speeds drawn uniformly from the
hundreds-of-megaflops range, each with an independent instance of one CPU
load model, all on one shared 6 MB/s link, with an MPI startup cost of
0.75 s per process.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.errors import PlatformError
from repro.faults.plan import FaultModel, FaultPlan
from repro.load.base import LoadModel
from repro.load.kernels import effective_rates_many
from repro.platform.host import Host, HostSpec
from repro.platform.network import LinkSpec
from repro.simkernel.rng import RngRegistry
from repro.units import HOUR, MFLOPS

#: The paper's measured MPI startup cost: "3/4 second per process".
DEFAULT_STARTUP_PER_PROCESS = 0.75

#: The paper's speed range: "processors in the hundreds-of-megaflops
#: performance range".
DEFAULT_SPEED_RANGE = (100 * MFLOPS, 500 * MFLOPS)


@dataclass
class Platform:
    """A concrete pool of hosts sharing one link.

    Host load traces are already instantiated, so two strategy simulations
    run on the *same* platform object observe the same environment -- the
    back-to-back reproducibility the paper built its simulator for.
    """

    hosts: "list[Host]"
    link: LinkSpec = field(default_factory=LinkSpec)
    startup_per_process: float = DEFAULT_STARTUP_PER_PROCESS
    """MPI launch cost per allocated process, in seconds."""
    faults: "FaultPlan | None" = None
    """Shared fault plan (revocations, transfer failures, store outages);
    ``None`` -- the default -- means a fault-free environment and leaves
    every strategy on its exact pre-fault code path."""

    def __post_init__(self) -> None:
        if not self.hosts:
            raise PlatformError("platform needs at least one host")
        names = [h.name for h in self.hosts]
        if len(set(names)) != len(names):
            raise PlatformError("host names must be unique")
        if self.startup_per_process < 0:
            raise PlatformError("startup_per_process must be >= 0")
        for i, host in enumerate(self.hosts):
            host.index = i

    def __len__(self) -> int:
        return len(self.hosts)

    def host(self, index: int) -> Host:
        return self.hosts[index]

    def startup_time(self, n_processes: int) -> float:
        """MPI launch time for ``n_processes`` (paper: 0.75 s each)."""
        if n_processes < 0:
            raise PlatformError(f"negative process count {n_processes}")
        return self.startup_per_process * n_processes

    def effective_rates(self, t: float, window: float = 0.0,
                        indices: "Sequence[int] | None" = None) -> "dict[int, float]":
        """Window-averaged effective rate of each host (flop/s) at ``t``.

        One flat pass over the hosts' cached trace kernels
        (:func:`repro.load.kernels.effective_rates_many`), bit-identical
        to calling :meth:`Host.effective_rate` per host.
        """
        if window < 0:
            raise PlatformError(f"negative window {window}")
        if indices is None:
            indices = range(len(self.hosts))
            hosts = self.hosts
        else:
            hosts = [self.hosts[i] for i in indices]
        return dict(zip(indices, effective_rates_many(hosts, t, window)))


def make_platform(n_hosts: int,
                  load_model_factory: "Callable[[int], LoadModel] | LoadModel",
                  seed: int = 0,
                  speed_range: "tuple[float, float]" = DEFAULT_SPEED_RANGE,
                  link: LinkSpec | None = None,
                  horizon: float = HOUR,
                  startup_per_process: float = DEFAULT_STARTUP_PER_PROCESS,
                  fault_model: FaultModel | None = None,
                  ) -> Platform:
    """Build the paper's heterogeneous time-shared platform.

    Parameters
    ----------
    n_hosts:
        Total pool size ``P = N + M`` (actives plus spares).
    load_model_factory:
        Either a single :class:`LoadModel` used for every host, or a
        callable ``factory(host_index) -> LoadModel``.
    seed:
        Root seed; host speeds and every host's load trace derive
        independent streams from it.
    speed_range:
        Uniform range for unloaded host speeds in flop/s.
    link:
        Shared link parameters (defaults to the paper's 6 MB/s LAN).
    horizon:
        Initial load-trace materialization horizon in seconds.
    startup_per_process:
        MPI launch cost per process.
    fault_model:
        Optional :class:`~repro.faults.plan.FaultModel`; when given, the
        platform carries one realized :class:`FaultPlan` (streams derived
        from the same root ``seed`` under the ``"faults"`` key) shared by
        every strategy that runs on it.
    """
    if n_hosts < 1:
        raise PlatformError(f"need at least one host, got {n_hosts}")
    lo, hi = speed_range
    if not 0 < lo <= hi:
        raise PlatformError(f"invalid speed range {speed_range}")

    registry = RngRegistry(seed)
    speed_rng = registry.stream("platform", "speeds")
    speeds = speed_rng.uniform(lo, hi, size=n_hosts)

    if callable(load_model_factory) and not isinstance(load_model_factory, LoadModel):
        factory = load_model_factory
    else:
        model = load_model_factory

        def factory(_index: int) -> LoadModel:
            return model

    hosts = []
    for i in range(n_hosts):
        spec = HostSpec(name=f"host{i:03d}", speed=float(speeds[i]),
                        load_model=factory(i))
        hosts.append(Host(spec, registry.stream("load", "host", i),
                          horizon=horizon, index=i))

    faults = None
    if fault_model is not None:
        faults = fault_model.build(registry.spawn("faults"), n_hosts)

    return Platform(hosts=hosts, link=link or LinkSpec(),
                    startup_per_process=startup_per_process,
                    faults=faults)
